package harness

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// simConfig is the scaled-down machine used across harness tests: the
// full secure pipeline with a PUB small enough that warm-up reaches the
// eviction threshold quickly.
func simConfig(s config.Scheme) config.Config {
	cfg := config.Default().WithScheme(s)
	cfg.MemBytes = 1 << 30
	cfg.PUBBytes = 256 << 10
	cfg.LLCBytes = 1 << 20
	return cfg
}

func run(t *testing.T, rc RunConfig) *Result {
	t.Helper()
	if rc.SetupKeys == 0 {
		rc.SetupKeys = 2048 // keep unit tests fast; experiments use the default
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesWork(t *testing.T) {
	res := run(t, RunConfig{
		Config:     simConfig(config.ThothWTSC),
		Workload:   "btree",
		WarmupTxs:  200,
		MeasureTxs: 400,
	})
	if res.Cycles <= 0 {
		t.Fatal("measured phase must consume cycles")
	}
	if res.Stats.TotalWrites() == 0 || res.Stats.Writes(stats.WriteData) == 0 {
		t.Fatal("measured phase must write data")
	}
	if res.Stats.Writes(stats.WritePCB) == 0 {
		t.Fatal("Thoth run must write PCB blocks")
	}
	if res.Stats.PUBEvictions == 0 {
		t.Fatal("prefilled PUB must evict during measurement")
	}
}

func TestRunVerifies(t *testing.T) {
	for _, w := range []string{"btree", "swap"} {
		res := run(t, RunConfig{
			Config:     simConfig(config.ThothWTSC),
			Workload:   w,
			WarmupTxs:  50,
			MeasureTxs: 150,
			Verify:     true,
		})
		_ = res // Verify already ran inside Run
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(RunConfig{Config: simConfig(config.ThothWTSC), Workload: "btree"}); err == nil {
		t.Error("zero MeasureTxs must error")
	}
	if _, err := Run(RunConfig{Config: simConfig(config.ThothWTSC), Workload: "nosuch", MeasureTxs: 10, SetupKeys: 64}); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestDeterministicCycles(t *testing.T) {
	rc := RunConfig{
		Config:     simConfig(config.ThothWTSC),
		Workload:   "hashmap",
		WarmupTxs:  100,
		MeasureTxs: 200,
	}
	a := run(t, rc)
	b := run(t, rc)
	if a.Cycles != b.Cycles || a.Stats.TotalWrites() != b.Stats.TotalWrites() {
		t.Fatalf("identical runs diverged: %d/%d cycles, %d/%d writes",
			a.Cycles, b.Cycles, a.Stats.TotalWrites(), b.Stats.TotalWrites())
	}
}

func TestThothBeatsBaselineOnDatabaseWorkloads(t *testing.T) {
	// The headline result (Figure 8): Thoth speeds up the database
	// workloads and reduces write traffic versus the adapted-Anubis
	// baseline.
	for _, w := range []string{"btree", "hashmap"} {
		base := run(t, RunConfig{Config: simConfig(config.BaselineStrict), Workload: w, WarmupTxs: 300, MeasureTxs: 600})
		thoth := run(t, RunConfig{Config: simConfig(config.ThothWTSC), Workload: w, WarmupTxs: 300, MeasureTxs: 600})
		speedup := float64(base.Cycles) / float64(thoth.Cycles)
		writeRatio := float64(thoth.Stats.TotalWrites()) / float64(base.Stats.TotalWrites())
		t.Logf("%s: speedup=%.3f writeRatio=%.3f (base %d cyc / %d wr; thoth %d cyc / %d wr)",
			w, speedup, writeRatio, base.Cycles, base.Stats.TotalWrites(), thoth.Cycles, thoth.Stats.TotalWrites())
		if speedup <= 1.0 {
			t.Errorf("%s: Thoth speedup %.3f, want > 1", w, speedup)
		}
		if writeRatio >= 1.0 {
			t.Errorf("%s: Thoth write ratio %.3f, want < 1", w, writeRatio)
		}
	}
}

func TestFenceOrdersPersists(t *testing.T) {
	r, err := NewRunner(RunConfig{Config: simConfig(config.ThothWTSC), Workload: "swap", MeasureTxs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := r.Controller().Layout()
	addr := lay.DataBase
	r.Store(addr, 128)
	r.Persist(addr, 128)
	before := r.Now()
	r.Fence()
	if r.Now() < before {
		t.Fatal("fence moved time backwards")
	}
	// After the fence there is nothing outstanding: a second fence is a
	// no-op.
	mid := r.Now()
	r.Fence()
	if r.Now() != mid {
		t.Fatal("idle fence must not advance time")
	}
}

func TestCLWBOfCleanLineIsFree(t *testing.T) {
	r, err := NewRunner(RunConfig{Config: simConfig(config.ThothWTSC), Workload: "swap", MeasureTxs: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr := r.Controller().Layout().DataBase
	r.Store(addr, 128)
	r.Persist(addr, 128)
	r.Fence()
	w := r.Controller().Stats().Writes(stats.WriteData)
	r.Persist(addr, 128) // line is clean now
	r.Fence()
	if got := r.Controller().Stats().Writes(stats.WriteData); got != w {
		t.Fatalf("clwb of clean line wrote %d extra blocks", got-w)
	}
}
