package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/scheme"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale sets the simulation magnitude for the experiment suite. The
// paper runs at least 5000 transactions per core on gem5 with a 64MB
// PUB; this model reproduces the same mechanics at a configurable scale
// — the PUB is sized so that the warm-up phase reaches the eviction
// threshold (the paper achieves the same by fast-forwarding and
// prefilling, Section V-A), and transaction counts trade runtime for
// statistical stability.
type Scale struct {
	WarmupTxs  int
	MeasureTxs int
	SetupKeys  int
	PUBBytes   int64
	MemBytes   int64
	LLCBytes   int
}

// DefaultScale runs a full experiment in a few seconds per configuration.
func DefaultScale() Scale {
	return Scale{
		WarmupTxs:  1200,
		MeasureTxs: 6000,
		SetupKeys:  16384,
		PUBBytes:   1 << 20,
		MemBytes:   1 << 30,
		LLCBytes:   1 << 20,
	}
}

// QuickScale is for smoke tests: an order of magnitude smaller.
func QuickScale() Scale {
	return Scale{
		WarmupTxs:  300,
		MeasureTxs: 1000,
		SetupKeys:  2048,
		PUBBytes:   256 << 10,
		MemBytes:   1 << 30,
		LLCBytes:   1 << 20,
	}
}

// apply stamps the scale onto a machine configuration.
func (sc Scale) apply(cfg config.Config) config.Config {
	cfg.MemBytes = sc.MemBytes
	cfg.PUBBytes = sc.PUBBytes
	cfg.LLCBytes = sc.LLCBytes
	return cfg
}

// Experiments memoizes simulation runs shared between figures and
// executes independent runs in parallel.
type Experiments struct {
	Scale   Scale
	Out     io.Writer
	Workers int
	// Tracer, when non-nil, receives the controller events of every run
	// the suite executes. Runs execute in parallel worker goroutines, so
	// the tracer must be safe for concurrent use (the obs sinks are).
	// Memoization keys ignore it: tracing does not change results.
	Tracer obs.Tracer
	// Zoo, when non-empty, replaces the default comparison set of the
	// Schemes experiment (the CLI's -schemes flag).
	Zoo []config.Scheme

	mu    sync.Mutex
	cache map[string]*Result
}

// NewExperiments builds an experiment driver writing reports to out.
func NewExperiments(sc Scale, out io.Writer) *Experiments {
	return &Experiments{
		Scale:   sc,
		Out:     out,
		Workers: runtime.GOMAXPROCS(0),
		cache:   make(map[string]*Result),
	}
}

func key(rc RunConfig) string {
	c := rc.Config
	return fmt.Sprintf("%s|%v|blk%d|tx%d|ctr%d|mac%d|wpq%d|pcb%d|pub%d|mem%d|w%d|m%d|s%d|eadr%v|after%v|shadow%v",
		rc.Workload, c.Scheme, c.BlockSize, c.TxSize, c.CtrCacheBytes, c.MACCacheBytes,
		c.WPQEntries, c.PCBEntries, c.PUBBytes, c.MemBytes,
		rc.WarmupTxs, rc.MeasureTxs, rc.SetupKeys, c.EADR, c.PCBAfterWPQ, c.ShadowTracking)
}

// runConfig builds the standard RunConfig for a machine configuration.
func (e *Experiments) runConfig(cfg config.Config, wl string) RunConfig {
	return RunConfig{
		Config:     cfg,
		Workload:   wl,
		WarmupTxs:  e.Scale.WarmupTxs,
		MeasureTxs: e.Scale.MeasureTxs,
		SetupKeys:  e.Scale.SetupKeys,
		Tracer:     e.Tracer,
	}
}

// get returns the memoized result for a run, executing it if needed.
func (e *Experiments) get(rc RunConfig) (*Result, error) {
	k := key(rc)
	e.mu.Lock()
	if r, ok := e.cache[k]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()
	r, err := Run(rc)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", k, err)
	}
	// Release heavyweight state not needed by report formatting.
	r.Controller = nil
	r.Runner = nil
	e.mu.Lock()
	e.cache[k] = r
	e.mu.Unlock()
	return r, nil
}

// prefetch executes a batch of runs in parallel. The first failure
// cancels the rest of the batch: runs not yet dispatched are skipped,
// and already-dispatched workers bail out before starting their
// simulation, so one poisoned configuration does not burn minutes
// executing the remaining matrix before the error surfaces.
func (e *Experiments) prefetch(rcs []RunConfig) error {
	sem := make(chan struct{}, e.Workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	seen := map[string]bool{}
	for _, rc := range rcs {
		k := key(rc)
		if seen[k] {
			continue
		}
		seen[k] = true
		if failed.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(rc RunConfig) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			if _, err := e.get(rc); err != nil {
				failed.Store(true)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(rc)
	}
	wg.Wait()
	return firstErr
}

// gmean returns the geometric mean of the values. Every value must be
// positive and finite: math.Log of a zero or negative speedup yields
// -Inf or NaN, which used to flow straight into the report as "NaN"
// instead of failing the experiment.
func gmean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("gmean: no values")
	}
	sum := 0.0
	for i, v := range vs {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("gmean: value %d is %v, need positive finite values", i, v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs))), nil
}

// mean returns the arithmetic mean.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Fig3 reproduces Figure 3: the breakdown of PUB-eviction outcomes for
// FIFO buffers of 500,000 / 5,000 / 50 entries (scaled by the same
// factor as the suite's PUB if the default scale is reduced).
func (e *Experiments) Fig3() error {
	sizes := []struct {
		label   string
		entries int64
	}{{"A=500000", 500000}, {"B=5000", 5000}, {"C=50", 50}}

	var rcs []RunConfig
	mk := func(entries int64, wl string) RunConfig {
		cfg := e.Scale.apply(config.Default().WithScheme(config.ThothWTSC))
		blocks := entries / int64(cfg.PartialsPerBlock())
		if blocks < 4 {
			blocks = 4
		}
		cfg.PUBBytes = blocks * int64(cfg.BlockSize)
		// Tiny hypothetical buffers need a smaller PCB so the ring can
		// still absorb the crash-time flush.
		if int64(cfg.PCBEntries) > blocks-2 {
			cfg.PCBEntries = int(blocks - 2)
		}
		return e.runConfig(cfg, wl)
	}
	for _, sz := range sizes {
		for _, wl := range workload.Names() {
			rcs = append(rcs, mk(sz.entries, wl))
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}

	fmt.Fprintf(e.Out, "\nFigure 3: PUB eviction outcome breakdown (%% of evicted partial updates)\n")
	fmt.Fprintf(e.Out, "%-10s %-10s %13s %16s %11s %11s %12s\n",
		"buffer", "workload", "written-back", "already-evicted", "clean-copy", "stale-copy", "no-write(%)")
	for _, sz := range sizes {
		var noWrite []float64
		for _, wl := range workload.Names() {
			r, err := e.get(mk(sz.entries, wl))
			if err != nil {
				return err
			}
			st := &r.Stats
			wb := 100 * st.EvictShare(stats.EvictWrittenBack)
			ae := 100 * st.EvictShare(stats.EvictAlreadyEvicted)
			cc := 100 * st.EvictShare(stats.EvictCleanCopy)
			sc := 100 * st.EvictShare(stats.EvictStaleCopy)
			nw := 100 - wb
			noWrite = append(noWrite, nw)
			fmt.Fprintf(e.Out, "%-10s %-10s %13.1f %16.1f %11.1f %11.1f %12.1f\n",
				sz.label, wl, wb, ae, cc, sc, nw)
		}
		fmt.Fprintf(e.Out, "%-10s %-10s %13s %16s %11s %11s %12.1f  (paper: larger buffers -> ~99.5%% no-write)\n",
			sz.label, "average", "", "", "", "", mean(noWrite))
	}
	return nil
}

// fig8Matrix lists the runs shared by Figures 8 and 9.
func (e *Experiments) fig8Matrix() []RunConfig {
	var rcs []RunConfig
	for _, blk := range []int{128, 256} {
		for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC, config.ThothWTBC} {
			for _, wl := range workload.Names() {
				cfg := e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(s))
				rcs = append(rcs, e.runConfig(cfg, wl))
			}
		}
	}
	return rcs
}

// Fig8 reproduces Figure 8: speedup of Thoth (WTSC and WTBC) over the
// baseline at 128B transactions for 128B and 256B cache blocks.
func (e *Experiments) Fig8() error {
	if err := e.prefetch(e.fig8Matrix()); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nFigure 8: Speedup over adapted-Anubis baseline (tx=128B)\n")
	fmt.Fprintf(e.Out, "%-10s %14s %14s %14s %14s\n",
		"workload", "128B/WTSC", "128B/WTBC", "256B/WTSC", "256B/WTBC")
	cols := []struct {
		blk    int
		scheme config.Scheme
	}{{128, config.ThothWTSC}, {128, config.ThothWTBC}, {256, config.ThothWTSC}, {256, config.ThothWTBC}}
	sums := make([][]float64, len(cols))
	for _, wl := range workload.Names() {
		fmt.Fprintf(e.Out, "%-10s", wl)
		for i, c := range cols {
			base, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(c.blk).WithScheme(config.BaselineStrict)), wl))
			if err != nil {
				return err
			}
			th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(c.blk).WithScheme(c.scheme)), wl))
			if err != nil {
				return err
			}
			sp := float64(base.Cycles) / float64(th.Cycles)
			sums[i] = append(sums[i], sp)
			fmt.Fprintf(e.Out, " %14.3f", sp)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "%-10s", "gmean")
	for i := range cols {
		g, err := gmean(sums[i])
		if err != nil {
			return fmt.Errorf("fig8 %s/%v: %w", "speedup", cols[i].scheme, err)
		}
		fmt.Fprintf(e.Out, " %14.3f", g)
	}
	fmt.Fprintf(e.Out, "\n(paper averages: 1.22x at 128B, 1.16x at 256B; swap ~1.0x)\n")
	return nil
}

// Fig9 reproduces Figure 9: write traffic of Thoth (WTSC/WTBC) relative
// to the baseline, plus the write-category breakdown quoted in V-B.
func (e *Experiments) Fig9() error {
	if err := e.prefetch(e.fig8Matrix()); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nFigure 9: NVM writes, normalized to baseline (tx=128B)\n")
	fmt.Fprintf(e.Out, "%-10s %12s %12s %12s %12s\n",
		"workload", "128B/WTSC", "128B/WTBC", "256B/WTSC", "256B/WTBC")
	cols := []struct {
		blk    int
		scheme config.Scheme
	}{{128, config.ThothWTSC}, {128, config.ThothWTBC}, {256, config.ThothWTSC}, {256, config.ThothWTBC}}
	sums := make([][]float64, len(cols))
	for _, wl := range workload.Names() {
		fmt.Fprintf(e.Out, "%-10s", wl)
		for i, c := range cols {
			base, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(c.blk).WithScheme(config.BaselineStrict)), wl))
			if err != nil {
				return err
			}
			th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(c.blk).WithScheme(c.scheme)), wl))
			if err != nil {
				return err
			}
			ratio := float64(th.Stats.TotalWrites()) / float64(base.Stats.TotalWrites())
			sums[i] = append(sums[i], ratio)
			fmt.Fprintf(e.Out, " %12.3f", ratio)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "%-10s", "mean")
	for i := range cols {
		fmt.Fprintf(e.Out, " %12.3f", mean(sums[i]))
	}
	fmt.Fprintf(e.Out, "\n(paper: -32%% at 128B, -37%% at 256B => ratios 0.68 / 0.63)\n")

	// Category breakdown (V-B quotes baseline ctr=24.37%, mac=29.7%;
	// Thoth pcb=3.95%, ctr=6.81%, mac=9.46%).
	fmt.Fprintf(e.Out, "\nWrite-category breakdown (128B blocks, %% of each scheme's total writes)\n")
	fmt.Fprintf(e.Out, "%-10s %-15s %8s %8s %8s %8s %8s %8s\n",
		"workload", "scheme", "data", "counter", "mac", "pcb", "tree", "other")
	for _, wl := range workload.Names() {
		for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC} {
			r, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithScheme(s)), wl))
			if err != nil {
				return err
			}
			st := &r.Stats
			fmt.Fprintf(e.Out, "%-10s %-15s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				wl, s,
				100*st.WriteShare(stats.WriteData), 100*st.WriteShare(stats.WriteCounter),
				100*st.WriteShare(stats.WriteMAC), 100*st.WriteShare(stats.WritePCB),
				100*st.WriteShare(stats.WriteTree), 100*st.WriteShare(stats.WriteOther))
		}
	}
	return nil
}

// txSweepMatrix lists the runs shared by Figure 10 and Tables II/III.
func (e *Experiments) txSweepMatrix() []RunConfig {
	var rcs []RunConfig
	for _, blk := range []int{128, 256} {
		for _, tx := range []int{128, 512, 1024, 2048} {
			for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC} {
				for _, wl := range workload.Names() {
					cfg := e.Scale.apply(config.Default().WithBlockSize(blk).WithTxSize(tx).WithScheme(s))
					rcs = append(rcs, e.runConfig(cfg, wl))
				}
			}
		}
	}
	return rcs
}

// Fig10 reproduces Figure 10: speedup versus transaction size.
func (e *Experiments) Fig10() error {
	if err := e.prefetch(e.txSweepMatrix()); err != nil {
		return err
	}
	for _, blk := range []int{128, 256} {
		fmt.Fprintf(e.Out, "\nFigure 10: Speedup vs transaction size (%dB cache block, WTSC)\n", blk)
		fmt.Fprintf(e.Out, "%-10s %9s %9s %9s %9s\n", "workload", "tx=128B", "tx=512B", "tx=1024B", "tx=2048B")
		sums := make([][]float64, 4)
		for _, wl := range workload.Names() {
			fmt.Fprintf(e.Out, "%-10s", wl)
			for i, tx := range []int{128, 512, 1024, 2048} {
				base, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithTxSize(tx).WithScheme(config.BaselineStrict)), wl))
				if err != nil {
					return err
				}
				th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithTxSize(tx).WithScheme(config.ThothWTSC)), wl))
				if err != nil {
					return err
				}
				sp := float64(base.Cycles) / float64(th.Cycles)
				sums[i] = append(sums[i], sp)
				fmt.Fprintf(e.Out, " %9.3f", sp)
			}
			fmt.Fprintln(e.Out)
		}
		fmt.Fprintf(e.Out, "%-10s", "gmean")
		for i := range sums {
			g, err := gmean(sums[i])
			if err != nil {
				return fmt.Errorf("fig10 blk=%d: %w", blk, err)
			}
			fmt.Fprintf(e.Out, " %9.3f", g)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(paper averages 128B blk: 1.22/1.23/1.19/1.19; 256B blk: 1.16/1.17/1.14/1.19)\n")
	return nil
}

// Table2 reproduces Table II: the average percentage of total NVM writes
// that are ciphertext (data) writes, for baseline and Thoth across
// transaction sizes and block sizes.
func (e *Experiments) Table2() error {
	if err := e.prefetch(e.txSweepMatrix()); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nTable II: Average %% of writes that are ciphertext\n")
	fmt.Fprintf(e.Out, "%-28s %9s %9s %9s %9s\n", "config", "tx=128B", "tx=512B", "tx=1024B", "tx=2048B")
	for _, row := range []struct {
		scheme config.Scheme
		blk    int
	}{
		{config.BaselineStrict, 128}, {config.BaselineStrict, 256},
		{config.ThothWTSC, 128}, {config.ThothWTSC, 256},
	} {
		fmt.Fprintf(e.Out, "%-28s", fmt.Sprintf("%v(blk=%dB)", row.scheme, row.blk))
		for _, tx := range []int{128, 512, 1024, 2048} {
			var shares []float64
			for _, wl := range workload.Names() {
				r, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(row.blk).WithTxSize(tx).WithScheme(row.scheme)), wl))
				if err != nil {
					return err
				}
				shares = append(shares, 100*r.Stats.WriteShare(stats.WriteData))
			}
			fmt.Fprintf(e.Out, " %8.2f%%", mean(shares))
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(paper: baseline 45-58%%, Thoth 67-76%%, rising with tx size)\n")
	return nil
}

// Table3 reproduces Table III: the average percentage of partial updates
// merged in the PCB across transaction sizes and block sizes.
func (e *Experiments) Table3() error {
	if err := e.prefetch(e.txSweepMatrix()); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nTable III: Average %% of partial updates merged in the PCB\n")
	fmt.Fprintf(e.Out, "%-20s %9s %9s %9s %9s\n", "cache block", "tx=128B", "tx=512B", "tx=1024B", "tx=2048B")
	for _, blk := range []int{128, 256} {
		fmt.Fprintf(e.Out, "%-20s", fmt.Sprintf("blk=%dB", blk))
		for _, tx := range []int{128, 512, 1024, 2048} {
			var rates []float64
			for _, wl := range workload.Names() {
				r, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithTxSize(tx).WithScheme(config.ThothWTSC)), wl))
				if err != nil {
					return err
				}
				rates = append(rates, 100*r.Stats.PCBMergeRate())
			}
			fmt.Fprintf(e.Out, " %8.2f%%", mean(rates))
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(paper: 74->34%% for 128B blk, 88->63%% for 256B blk as tx grows;\n shape: merge rate falls with tx size, 256B blocks merge more)\n")
	return nil
}

// Fig11 reproduces Figure 11: speedup sensitivity to the counter/MAC
// cache sizes (64k/128k, 512k/1M, 1M/2M).
func (e *Experiments) Fig11() error {
	caches := []struct {
		label    string
		ctr, mac int
	}{
		{"64k/128k", 64 << 10, 128 << 10},
		{"512k/1M", 512 << 10, 1 << 20},
		{"1M/2M", 1 << 20, 2 << 20},
	}
	var rcs []RunConfig
	for _, blk := range []int{128, 256} {
		for _, cs := range caches {
			for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC} {
				for _, wl := range workload.Names() {
					cfg := e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(s).WithMetadataCaches(cs.ctr, cs.mac))
					rcs = append(rcs, e.runConfig(cfg, wl))
				}
			}
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	for _, blk := range []int{128, 256} {
		fmt.Fprintf(e.Out, "\nFigure 11: Speedup vs counter/MAC cache size (%dB cache block, WTSC)\n", blk)
		fmt.Fprintf(e.Out, "%-10s %10s %10s %10s\n", "workload", "64k/128k", "512k/1M", "1M/2M")
		sums := make([][]float64, len(caches))
		for _, wl := range workload.Names() {
			fmt.Fprintf(e.Out, "%-10s", wl)
			for i, cs := range caches {
				base, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(config.BaselineStrict).WithMetadataCaches(cs.ctr, cs.mac)), wl))
				if err != nil {
					return err
				}
				th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(config.ThothWTSC).WithMetadataCaches(cs.ctr, cs.mac)), wl))
				if err != nil {
					return err
				}
				sp := float64(base.Cycles) / float64(th.Cycles)
				sums[i] = append(sums[i], sp)
				fmt.Fprintf(e.Out, " %10.3f", sp)
			}
			fmt.Fprintln(e.Out)
		}
		fmt.Fprintf(e.Out, "%-10s", "gmean")
		for i := range sums {
			g, err := gmean(sums[i])
			if err != nil {
				return fmt.Errorf("fig11 blk=%d: %w", blk, err)
			}
			fmt.Fprintf(e.Out, " %10.3f", g)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(paper: 1.22->1.34 at 128B blk, 1.16->1.28 at 256B blk: larger caches help Thoth)\n")
	return nil
}

// Fig12 reproduces Figure 12: speedup sensitivity to WPQ size (64/32/16
// entries; Thoth reserves 1/8 of entries for the PCB).
func (e *Experiments) Fig12() error {
	wpqs := []int{64, 32, 16}
	var rcs []RunConfig
	for _, blk := range []int{128, 256} {
		for _, q := range wpqs {
			for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC} {
				for _, wl := range workload.Names() {
					cfg := e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(s).WithWPQ(q))
					rcs = append(rcs, e.runConfig(cfg, wl))
				}
			}
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	for _, blk := range []int{128, 256} {
		fmt.Fprintf(e.Out, "\nFigure 12: Speedup vs WPQ size (%dB cache block, WTSC)\n", blk)
		fmt.Fprintf(e.Out, "%-10s %10s %10s %10s\n", "workload", "WPQ=64", "WPQ=32", "WPQ=16")
		sums := make([][]float64, len(wpqs))
		for _, wl := range workload.Names() {
			fmt.Fprintf(e.Out, "%-10s", wl)
			for i, q := range wpqs {
				base, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(config.BaselineStrict).WithWPQ(q)), wl))
				if err != nil {
					return err
				}
				th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithBlockSize(blk).WithScheme(config.ThothWTSC).WithWPQ(q)), wl))
				if err != nil {
					return err
				}
				sp := float64(base.Cycles) / float64(th.Cycles)
				sums[i] = append(sums[i], sp)
				fmt.Fprintf(e.Out, " %10.3f", sp)
			}
			fmt.Fprintln(e.Out)
		}
		fmt.Fprintf(e.Out, "%-10s", "gmean")
		for i := range sums {
			g, err := gmean(sums[i])
			if err != nil {
				return fmt.Errorf("fig12 blk=%d: %w", blk, err)
			}
			fmt.Fprintf(e.Out, " %10.3f", g)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(paper: 1.22/1.48/1.65 at 128B blk, 1.16/1.50/1.81 at 256B: smaller WPQ widens the gap)\n")
	return nil
}

// SecVF reproduces the Section V-F comparison: Thoth's overhead versus
// the hypothetical Anubis-with-ECC ideal (paper: ~7% on average).
func (e *Experiments) SecVF() error {
	var rcs []RunConfig
	for _, s := range []config.Scheme{config.AnubisECC, config.ThothWTSC} {
		for _, wl := range workload.Names() {
			rcs = append(rcs, e.runConfig(e.Scale.apply(config.Default().WithScheme(s)), wl))
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nSection V-F: Thoth overhead vs Anubis-with-ECC ideal (128B blocks)\n")
	fmt.Fprintf(e.Out, "%-10s %16s\n", "workload", "overhead")
	var ovs []float64
	for _, wl := range workload.Names() {
		ideal, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithScheme(config.AnubisECC)), wl))
		if err != nil {
			return err
		}
		th, err := e.get(e.runConfig(e.Scale.apply(config.Default().WithScheme(config.ThothWTSC)), wl))
		if err != nil {
			return err
		}
		ov := float64(th.Cycles)/float64(ideal.Cycles) - 1
		ovs = append(ovs, ov)
		fmt.Fprintf(e.Out, "%-10s %15.1f%%\n", wl, 100*ov)
	}
	fmt.Fprintf(e.Out, "%-10s %15.1f%%  (paper: ~7%% average)\n", "average", 100*mean(ovs))
	return nil
}

// Recovery runs the crash/recovery experiment: each workload runs, the
// machine crashes mid-stream, recovery merges the PUB and verifies the
// tree, and the analytic recovery time for the paper's full 64MB PUB is
// reported (paper: ~7s).
func (e *Experiments) Recovery() error {
	fmt.Fprintf(e.Out, "\nSection IV-D: Crash recovery (WTSC)\n")
	fmt.Fprintf(e.Out, "%-10s %10s %10s %10s %10s %8s %12s\n",
		"workload", "pubBlocks", "entries", "mergedCtr", "mergedMAC", "rootOK", "est(64MB)")
	full := config.Default()
	fullEst := recovery.EstimateSeconds(full, full.PUBBlocks())
	for _, wl := range workload.Names() {
		cfg := e.Scale.apply(config.Default().WithScheme(config.ThothWTSC))
		rc := e.runConfig(cfg, wl)
		rc.MeasureTxs = e.Scale.MeasureTxs / 4
		res, err := Run(rc)
		if err != nil {
			return err
		}
		if err := res.Runner.Controller().Crash(res.Runner.Now()); err != nil {
			return fmt.Errorf("crash(%s): %w", wl, err)
		}
		rep, err := recovery.Recover(cfg, res.Controller.Device())
		if err != nil {
			return fmt.Errorf("recovery(%s): %w", wl, err)
		}
		fmt.Fprintf(e.Out, "%-10s %10d %10d %10d %10d %8v %11.2fs\n",
			wl, rep.PUBBlocks, rep.PUBEntries, rep.MergedCtr, rep.MergedMAC,
			rep.RootVerified, fullEst)
	}
	fmt.Fprintf(e.Out, "(paper: ~7s added recovery time for a 64MB PUB)\n")
	return nil
}

// EADRAblation is an extension experiment covering the paper's explicit
// future work (Section II-B): with enhanced ADR the cache hierarchy is
// persistent, clwb/sfence leave the critical path, and the data reaches
// NVM only on natural evictions — shrinking both the write stream and
// the gap between schemes (at the platform cost the paper cites as the
// reason eADR is often disabled).
func (e *Experiments) EADRAblation() error {
	mk := func(s config.Scheme, eadr bool, wl string) RunConfig {
		cfg := e.Scale.apply(config.Default().WithScheme(s))
		cfg.EADR = eadr
		return e.runConfig(cfg, wl)
	}
	var rcs []RunConfig
	for _, s := range []config.Scheme{config.BaselineStrict, config.ThothWTSC} {
		for _, eadr := range []bool{false, true} {
			for _, wl := range workload.Names() {
				rcs = append(rcs, mk(s, eadr, wl))
			}
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nExtension: ADR vs eADR (future work in the paper, Section II-B)\n")
	fmt.Fprintf(e.Out, "%-10s %14s %14s %14s %12s %12s\n",
		"workload", "base/ADR cyc", "thoth/ADR cyc", "eADR cyc", "eADR gain", "eADR writes")
	for _, wl := range workload.Names() {
		base, err := e.get(mk(config.BaselineStrict, false, wl))
		if err != nil {
			return err
		}
		th, err := e.get(mk(config.ThothWTSC, false, wl))
		if err != nil {
			return err
		}
		ead, err := e.get(mk(config.ThothWTSC, true, wl))
		if err != nil {
			return err
		}
		fmt.Fprintf(e.Out, "%-10s %14d %14d %14d %11.2fx %11.1f%%\n",
			wl, base.Cycles, th.Cycles, ead.Cycles,
			float64(th.Cycles)/float64(ead.Cycles),
			100*float64(ead.Stats.TotalWrites())/float64(th.Stats.TotalWrites()))
	}
	fmt.Fprintf(e.Out, "(persists leave the critical path; only natural evictions write during execution)\n")
	return nil
}

// PUBSize is an ablation over the PUB capacity (the design's central
// parameter, Section III): speedup and the fraction of PUB evictions
// that still require a write-back, as the buffer shrinks from the
// suite's default toward nothing.
func (e *Experiments) PUBSize() error {
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	mk := func(s config.Scheme, pub int64, wl string) RunConfig {
		cfg := e.Scale.apply(config.Default().WithScheme(s))
		if scheme.UsesPUB(s) {
			cfg.PUBBytes = pub
		}
		return e.runConfig(cfg, wl)
	}
	var rcs []RunConfig
	for _, wl := range workload.Names() {
		rcs = append(rcs, mk(config.BaselineStrict, 0, wl))
		for _, pub := range sizes {
			rcs = append(rcs, mk(config.ThothWTSC, pub, wl))
		}
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nAblation: PUB size (WTSC, 128B blocks) — speedup / %%written-back at eviction\n")
	fmt.Fprintf(e.Out, "%-10s", "workload")
	for _, pub := range sizes {
		fmt.Fprintf(e.Out, " %14s", fmt.Sprintf("PUB=%dKiB", pub>>10))
	}
	fmt.Fprintln(e.Out)
	for _, wl := range workload.Names() {
		base, err := e.get(mk(config.BaselineStrict, 0, wl))
		if err != nil {
			return err
		}
		fmt.Fprintf(e.Out, "%-10s", wl)
		for _, pub := range sizes {
			th, err := e.get(mk(config.ThothWTSC, pub, wl))
			if err != nil {
				return err
			}
			wb := 100 * th.Stats.EvictShare(stats.EvictWrittenBack)
			fmt.Fprintf(e.Out, "  %6.3f/%5.1f%%", float64(base.Cycles)/float64(th.Cycles), wb)
		}
		fmt.Fprintln(e.Out)
	}
	fmt.Fprintf(e.Out, "(larger PUBs turn more evictions into discards — the paper's central claim)\n")
	return nil
}

// Arrangement is the Section IV-C ablation: the adopted augmented
// PCB-before-WPQ versus the alternative PCB-after-WPQ. The paper reports
// the augmented before-arrangement "can minimize the pressure on the WPQ
// and obtain similar performance as in PCB-after-WPQ".
func (e *Experiments) Arrangement() error {
	mk := func(s config.Scheme, after bool, wl string) RunConfig {
		cfg := e.Scale.apply(config.Default().WithScheme(s))
		cfg.PCBAfterWPQ = after
		return e.runConfig(cfg, wl)
	}
	var rcs []RunConfig
	for _, wl := range workload.Names() {
		rcs = append(rcs, mk(config.BaselineStrict, false, wl))
		rcs = append(rcs, mk(config.ThothWTSC, false, wl))
		rcs = append(rcs, mk(config.ThothWTSC, true, wl))
	}
	if err := e.prefetch(rcs); err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "\nAblation: PCB arrangement (Section IV-C) — speedup over baseline\n")
	fmt.Fprintf(e.Out, "%-10s %16s %16s %14s %14s\n",
		"workload", "before-WPQ", "after-WPQ", "before wr", "after wr")
	var sb, sa []float64
	for _, wl := range workload.Names() {
		base, err := e.get(mk(config.BaselineStrict, false, wl))
		if err != nil {
			return err
		}
		before, err := e.get(mk(config.ThothWTSC, false, wl))
		if err != nil {
			return err
		}
		after, err := e.get(mk(config.ThothWTSC, true, wl))
		if err != nil {
			return err
		}
		b := float64(base.Cycles) / float64(before.Cycles)
		a := float64(base.Cycles) / float64(after.Cycles)
		sb = append(sb, b)
		sa = append(sa, a)
		fmt.Fprintf(e.Out, "%-10s %16.3f %16.3f %14d %14d\n",
			wl, b, a, before.Stats.TotalWrites(), after.Stats.TotalWrites())
	}
	gb, err := gmean(sb)
	if err != nil {
		return fmt.Errorf("arrangement before-WPQ: %w", err)
	}
	ga, err := gmean(sa)
	if err != nil {
		return fmt.Errorf("arrangement after-WPQ: %w", err)
	}
	fmt.Fprintf(e.Out, "%-10s %16.3f %16.3f\n", "gmean", gb, ga)
	fmt.Fprintf(e.Out, "(paper: the augmented before-arrangement performs similarly to after-WPQ)\n")
	return nil
}

// All runs every experiment in report order.
func (e *Experiments) All() error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"fig3", e.Fig3}, {"fig8", e.Fig8}, {"fig9", e.Fig9},
		{"fig10", e.Fig10}, {"table2", e.Table2}, {"table3", e.Table3},
		{"fig11", e.Fig11}, {"fig12", e.Fig12}, {"secVF", e.SecVF},
		{"recovery", e.Recovery}, {"eadr", e.EADRAblation},
		{"pubsize", e.PUBSize}, {"arrangement", e.Arrangement},
		{"schemes", e.Schemes}, {"scenarios", e.Scenarios},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}

// ByName dispatches one experiment by its CLI name.
func (e *Experiments) ByName(name string) error {
	m := map[string]func() error{
		"3": e.Fig3, "8": e.Fig8, "9": e.Fig9, "10": e.Fig10,
		"table2": e.Table2, "table3": e.Table3,
		"11": e.Fig11, "12": e.Fig12, "vf": e.SecVF, "recovery": e.Recovery,
		"eadr": e.EADRAblation, "pubsize": e.PUBSize,
		"arrangement": e.Arrangement, "schemes": e.Schemes,
		"scenarios": e.Scenarios,
		"all":       e.All,
	}
	fn, ok := m[name]
	if !ok {
		names := make([]string, 0, len(m))
		for k := range m {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q (have %v)", name, names)
	}
	return fn()
}
