// Package ctr encodes and decodes split-counter blocks (Section II-A).
//
// One counter block covers one data page. Its layout is:
//
//	bytes 0..7   : 64-bit major counter, shared by every block of the page
//	bits 64..    : one 7-bit minor counter per data block of the page
//
// A 64B block fits the major plus 64 minors (64 + 64*7 = 512 bits), the
// canonical split-counter arrangement; larger blocks have slack.
package ctr

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/crypt"
)

// majorBits is the width of the shared major counter.
const majorBits = 64

// MaxSlots returns how many minor counters a block of the given size can
// architecturally hold.
func MaxSlots(blockSize int) int {
	return (blockSize*8 - majorBits) / crypt.MinorBits
}

// Major reads the page's major counter.
func Major(block []byte) uint64 {
	return binary.LittleEndian.Uint64(block[0:8])
}

// SetMajor writes the page's major counter.
func SetMajor(block []byte, v uint64) {
	binary.LittleEndian.PutUint64(block[0:8], v)
}

// Minor reads the 7-bit minor counter in the given slot.
func Minor(block []byte, slot int) uint8 {
	checkSlot(block, slot)
	return uint8(bitpack.Get(block, majorBits+slot*crypt.MinorBits, crypt.MinorBits))
}

// SetMinor writes the 7-bit minor counter in the given slot.
func SetMinor(block []byte, slot int, v uint8) {
	checkSlot(block, slot)
	if v > crypt.MinorMax {
		panic(fmt.Sprintf("ctr: minor %d exceeds %d bits", v, crypt.MinorBits))
	}
	bitpack.Set(block, majorBits+slot*crypt.MinorBits, crypt.MinorBits, uint64(v))
}

// Counter assembles the full split counter for a slot.
func Counter(block []byte, slot int) crypt.Counter {
	return crypt.Counter{Major: Major(block), Minor: Minor(block, slot)}
}

// Bump increments the minor counter in the given slot and returns the new
// counter plus whether the minor overflowed. On overflow the minor wraps
// to zero and the major is incremented: the caller must re-encrypt every
// block of the page under the new major and persist the counter block
// immediately (Section IV-A).
func Bump(block []byte, slot int) (c crypt.Counter, overflow bool) {
	m := Minor(block, slot)
	if m == crypt.MinorMax {
		SetMajor(block, Major(block)+1)
		// All minors reset so every block of the page is re-encrypted
		// under the new major with a fresh temporal component.
		for s := 0; s < MaxSlots(len(block)); s++ {
			SetMinor(block, s, 0)
		}
		return Counter(block, slot), true
	}
	SetMinor(block, slot, m+1)
	return Counter(block, slot), false
}

func checkSlot(block []byte, slot int) {
	if slot < 0 || slot >= MaxSlots(len(block)) {
		panic(fmt.Sprintf("ctr: slot %d out of range for %dB block", slot, len(block)))
	}
}
