package ctr

import (
	"testing"
	"testing/quick"

	"repro/internal/crypt"
)

func TestMaxSlots(t *testing.T) {
	// 64B block: (512-64)/7 = 64 minors — the canonical split counter.
	if got := MaxSlots(64); got != 64 {
		t.Errorf("MaxSlots(64) = %d, want 64", got)
	}
	if got := MaxSlots(128); got != 137 {
		t.Errorf("MaxSlots(128) = %d, want 137", got)
	}
}

func TestMajorRoundTrip(t *testing.T) {
	b := make([]byte, 64)
	SetMajor(b, 0xDEADBEEF12345678)
	if got := Major(b); got != 0xDEADBEEF12345678 {
		t.Fatalf("Major = %#x", got)
	}
}

func TestMinorsIndependent(t *testing.T) {
	b := make([]byte, 64)
	SetMajor(b, 42)
	for s := 0; s < 64; s++ {
		SetMinor(b, s, uint8(s%128))
	}
	if Major(b) != 42 {
		t.Fatal("minor writes corrupted the major")
	}
	for s := 0; s < 64; s++ {
		if got := Minor(b, s); got != uint8(s%128) {
			t.Fatalf("Minor(%d) = %d, want %d", s, got, s%128)
		}
	}
}

func TestCounterAssembly(t *testing.T) {
	b := make([]byte, 64)
	SetMajor(b, 7)
	SetMinor(b, 3, 99)
	if got := Counter(b, 3); got != (crypt.Counter{Major: 7, Minor: 99}) {
		t.Fatalf("Counter = %+v", got)
	}
}

func TestBumpIncrementsMinor(t *testing.T) {
	b := make([]byte, 64)
	c, over := Bump(b, 5)
	if over || c.Minor != 1 || c.Major != 0 {
		t.Fatalf("first bump = (%+v, %v)", c, over)
	}
	c, over = Bump(b, 5)
	if over || c.Minor != 2 {
		t.Fatalf("second bump = (%+v, %v)", c, over)
	}
	if Minor(b, 4) != 0 || Minor(b, 6) != 0 {
		t.Fatal("bump leaked into neighbouring slots")
	}
}

func TestBumpOverflowResetsPage(t *testing.T) {
	b := make([]byte, 64)
	SetMinor(b, 0, crypt.MinorMax)
	SetMinor(b, 1, 55)
	c, over := Bump(b, 0)
	if !over {
		t.Fatal("bump at MinorMax must overflow")
	}
	if c.Major != 1 || c.Minor != 0 {
		t.Fatalf("post-overflow counter = %+v, want major=1 minor=0", c)
	}
	if Minor(b, 1) != 0 {
		t.Fatal("overflow must reset every minor in the page")
	}
}

func TestBadSlotPanics(t *testing.T) {
	b := make([]byte, 64)
	for _, slot := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slot %d must panic", slot)
				}
			}()
			Minor(b, slot)
		}()
	}
}

func TestOversizedMinorPanics(t *testing.T) {
	b := make([]byte, 64)
	defer func() {
		if recover() == nil {
			t.Error("SetMinor(128) must panic: minors are 7-bit")
		}
	}()
	SetMinor(b, 0, 128)
}

// Property: any sequence of bumps to random slots keeps the invariant
// counter(slot) == (major, number of bumps since last overflow) per slot,
// tracked against a simple model.
func TestBumpModelProperty(t *testing.T) {
	f := func(slots []uint8) bool {
		b := make([]byte, 64)
		model := map[int]uint8{}
		var major uint64
		for _, s := range slots {
			slot := int(s) % 64
			c, over := Bump(b, slot)
			if over {
				major++
				model = map[int]uint8{}
			} else {
				model[slot]++
			}
			if c.Major != major || c.Minor != model[slot] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
