package recovery

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// testConfig mirrors the core package's small test configuration.
func testConfig(s config.Scheme) config.Config {
	cfg := config.Default().WithScheme(s)
	cfg.MemBytes = 256 << 20
	cfg.PUBBytes = 16 << 10
	cfg.CtrCacheBytes = 4 << 10
	cfg.MACCacheBytes = 8 << 10
	cfg.MTCacheBytes = 16 << 10
	return cfg
}

// runAndCrash persists n blocks (addresses i*stride), crashes, and
// returns the controller plus the plaintext model.
func runAndCrash(t *testing.T, cfg config.Config, n int, stride int64) (*core.Controller, map[int64][]byte) {
	t.Helper()
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64][]byte{}
	var now int64
	for i := 0; i < n; i++ {
		addr := int64(i%37) * stride
		data := make([]byte, cfg.BlockSize)
		for j := range data {
			data[j] = byte(i) ^ byte(j) ^ 0xA5
		}
		now = c.PersistBlock(now, addr, data)
		model[addr] = data
	}
	if err := c.Crash(now); err != nil {
		t.Fatal(err)
	}
	return c, model
}

func verifyReadable(t *testing.T, cfg config.Config, c *core.Controller, model map[int64][]byte) {
	t.Helper()
	c2, err := core.Attach(cfg, c.Device())
	if err != nil {
		t.Fatal(err)
	}
	for addr, want := range model {
		_, got := c2.ReadBlock(0, addr)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %#x lost across crash+recovery", addr)
		}
	}
}

func TestRecoverThothCrash(t *testing.T) {
	for _, s := range []config.Scheme{config.ThothWTSC, config.ThothWTBC} {
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			c, model := runAndCrash(t, cfg, 500, 4096)
			rep, err := Recover(cfg, c.Device())
			if err != nil {
				t.Fatalf("recovery failed: %v (%s)", err, rep)
			}
			if !rep.RootVerified {
				t.Fatal("root must verify after recovery")
			}
			if rep.PUBEntries == 0 {
				t.Fatal("a Thoth crash image must contain PUB entries")
			}
			if rep.MergedCtr == 0 {
				t.Fatal("recovery of a dirty-cache crash must merge counters")
			}
			verifyReadable(t, cfg, c, model)
		})
	}
}

func TestRecoverWithPartialPCB(t *testing.T) {
	// A number of persists that is not a multiple of the PCB block
	// capacity leaves in-progress entries in the PCB at crash time; they
	// are flushed by duplication and must merge idempotently.
	cfg := testConfig(config.ThothWTSC)
	c, model := runAndCrash(t, cfg, 95, 4096) // 95 % 9 != 0
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("recovery failed: %v (%s)", err, rep)
	}
	verifyReadable(t, cfg, c, model)
}

func TestRecoverBaselineCrash(t *testing.T) {
	cfg := testConfig(config.BaselineStrict)
	c, model := runAndCrash(t, cfg, 300, 4096)
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("baseline image must recover trivially: %v", err)
	}
	if rep.PUBEntries != 0 {
		t.Fatal("baseline has no PUB entries")
	}
	verifyReadable(t, cfg, c, model)
}

func TestRecoverAnubisECCCrash(t *testing.T) {
	cfg := testConfig(config.AnubisECC)
	c, model := runAndCrash(t, cfg, 300, 4096)
	if _, err := Recover(cfg, c.Device()); err != nil {
		t.Fatalf("AnubisECC image must recover via co-located metadata: %v", err)
	}
	verifyReadable(t, cfg, c, model)
}

func TestRecoveryIsIdempotent(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	c, model := runAndCrash(t, cfg, 200, 4096)
	if _, err := Recover(cfg, c.Device()); err != nil {
		t.Fatal(err)
	}
	rep2, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	if rep2.MergedCtr != 0 || rep2.MergedMAC != 0 {
		t.Fatalf("second recovery merged %d/%d entries, want 0/0 (idempotence)",
			rep2.MergedCtr, rep2.MergedMAC)
	}
	verifyReadable(t, cfg, c, model)
}

func TestTamperedCounterRegionDetected(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	c, _ := runAndCrash(t, cfg, 200, 4096)
	dev := c.Device()
	lay := c.Layout()
	// Flip a bit in a written counter block.
	blk := dev.Peek(lay.CtrBase)
	blk[3] ^= 0x10
	dev.WriteBlock(lay.CtrBase, blk)
	_, err := Recover(cfg, dev)
	if !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch", err)
	}
}

func TestTamperedPUBDetected(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	c, _ := runAndCrash(t, cfg, 500, 4096)
	dev := c.Device()
	lay := c.Layout()
	// Corrupt every PUB block: any entry recovery depended on is now
	// unusable, so the merged image cannot reach the persisted root.
	for i := int64(0); i < lay.PUBBlocks(); i++ {
		addr := lay.PUBBlockAddr(i)
		if !dev.Written(addr) {
			continue
		}
		blk := dev.Peek(addr)
		for j := range blk {
			blk[j] ^= 0xFF
		}
		dev.WriteBlock(addr, blk)
	}
	_, err := Recover(cfg, dev)
	if !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch", err)
	}
}

func TestReplayedStaleCounterDetected(t *testing.T) {
	cfg := testConfig(config.BaselineStrict)
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cfg.BlockSize)
	now := c.PersistBlock(0, 4096, data)
	lay := c.Layout()
	old := c.Device().Peek(lay.CtrBlockAddr(4096))
	// More writes advance the counter.
	for i := 0; i < 5; i++ {
		now = c.PersistBlock(now, 4096, data)
	}
	c.Crash(now)
	// Replay attack: restore the old counter block.
	c.Device().WriteBlock(lay.CtrBlockAddr(4096), old)
	if _, err := Recover(cfg, c.Device()); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch (replay must be detected)", err)
	}
}

func TestRecoverRejectsMissingControlState(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No crash: the control region was never written.
	if _, err := Recover(cfg, c.Device()); err == nil {
		t.Fatal("recovery without a persisted root must fail")
	}
}

func TestEstimateMatchesPaperBallpark(t *testing.T) {
	// Section IV-D: "a marginal extra recovery time of 7 seconds even
	// for a PUB as large as 64MB". Our model must land in the same
	// order of magnitude for the full 64MB PUB.
	cfg := config.Default() // 64MB PUB, 128B blocks
	secs := EstimateSeconds(cfg, cfg.PUBBlocks())
	if secs < 1 || secs > 20 {
		t.Fatalf("estimated recovery = %.2fs for 64MB PUB, want O(7s)", secs)
	}
	// And it scales linearly with PUB size.
	half := EstimateSeconds(cfg, cfg.PUBBlocks()/2)
	if half <= 0 || half >= secs {
		t.Fatalf("half PUB estimate %.2fs not below full %.2fs", half, secs)
	}
}

func TestRecoverAfterPUBEvictions(t *testing.T) {
	// Enough traffic that the tiny ring evicts many blocks before the
	// crash: eviction discards must never lose a recoverable update.
	cfg := testConfig(config.ThothWTSC)
	cfg.PUBBytes = 8 * int64(cfg.BlockSize)
	cfg.PCBEntries = 2
	c, model := runAndCrash(t, cfg, 2000, 4096)
	if c.Stats().PUBEvictions == 0 {
		t.Fatal("test needs eviction traffic to be meaningful")
	}
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("recovery failed after evictions: %v (%s)", err, rep)
	}
	verifyReadable(t, cfg, c, model)
}

func TestRecoverPCBAfterWPQCrash(t *testing.T) {
	// The alternative PCB arrangement (Section IV-C) must produce
	// recoverable crash images too.
	cfg := testConfig(config.ThothWTSC)
	cfg.PCBAfterWPQ = true
	c, model := runAndCrash(t, cfg, 800, 4096)
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("recovery failed: %v (%s)", err, rep)
	}
	verifyReadable(t, cfg, c, model)
}
