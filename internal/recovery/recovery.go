// Package recovery implements the post-crash restoration procedure of
// Section IV-D. Given the NVM image left behind by a crash (the volatile
// caches are gone; the ADR domain — WPQ contents, PCB partials, PUB
// bounds, and the on-chip tree root — was flushed), it:
//
//  1. Restores the PUB ring bounds from the control region.
//  2. Scans the PUB oldest-to-youngest. For every packed partial update
//     it performs verify-then-merge: the candidate counter is assembled
//     from the in-place major and the entry's minor, the first-level MAC
//     is recomputed over the in-place ciphertext under that counter, and
//     the second-level MAC is compared against the entry's. A match
//     proves the entry corresponds to the ciphertext in NVM, so its
//     counter and (recomputed first-level) MAC are merged into their
//     home blocks; a mismatch means the entry is stale — the metadata
//     block in place, or a younger entry, already carries newer state —
//     and it is skipped. (This is the paper's "fetch the corresponding
//     ciphertext, compute two levels of MAC, and use the second level of
//     MAC to verify".)
//  3. Rebuilds the Bonsai Merkle Tree bottom-up from the merged counter
//     region and verifies it against the persisted root. Any tampering
//     with the PUB, the counters, or replayed stale blocks surfaces here
//     (or earlier as an unmergeable-but-claimed-fresh entry).
//
// The package also provides the analytic recovery-time model behind the
// paper's "7 seconds for a 64MB PUB" claim.
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/bmt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/ctr"
	"repro/internal/layout"
	"repro/internal/macs"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pub"
	"repro/internal/scheme"
)

// ErrRootMismatch is returned when the rebuilt tree root does not match
// the persisted root: the image is tampered or corrupt.
var ErrRootMismatch = errors.New("recovery: rebuilt tree root does not match persisted root")

// ErrNoControlState is returned when the image carries no usable ADR
// control state: the persisted root block or the PUB ring bounds are
// missing or corrupt. Serial and parallel recovery wrap it identically,
// so errors.Is(err, ErrNoControlState) holds on both paths.
var ErrNoControlState = errors.New("recovery: control region holds no usable state")

// blockStore is the device access recovery merging needs. The serial
// path passes the *nvm.Device directly; the parallel path passes
// per-worker nvm.Shard handles, so both run the exact same mergeEntry.
type blockStore interface {
	Peek(addr int64) []byte
	WriteBlock(addr int64, data []byte)
}

// Report summarizes one recovery run.
type Report struct {
	// PUBBlocks and PUBEntries are the ring contents scanned.
	PUBBlocks  int64
	PUBEntries int64
	// MergedCtr / MergedMAC count in-place metadata updates applied.
	MergedCtr int64
	MergedMAC int64
	// SkippedStale counts entries whose second-level MAC did not match
	// the in-place ciphertext (superseded by younger state).
	SkippedStale int64
	// RootVerified is true when the rebuilt tree matched the persisted
	// root.
	RootVerified bool
	// EstimatedCycles / EstimatedSeconds are the modeled recovery time
	// for the scanned PUB (Section IV-D's cost model; the parallel model
	// when Workers > 0).
	EstimatedCycles  int64
	EstimatedSeconds float64

	// Parallel recovery (RecoverParallel). Workers is the worker count
	// the run used (0 for the serial Recover); Shards is the per-shard
	// breakdown. ScanCycles, MergeCycles, RebuildCycles and VerifyCycles
	// are the modeled per-phase costs (merge and rebuild are critical
	// path: the maximum over workers, not the sum); the *WallNS fields
	// are measured host wall time per phase. None of these participate
	// in CountsEqual.
	Workers       int
	Shards        []ShardReport
	ScanCycles    int64
	MergeCycles   int64
	RebuildCycles int64
	VerifyCycles  int64
	ScanWallNS    int64
	MergeWallNS   int64
	RebuildWallNS int64
	VerifyWallNS  int64

	// Shadow-accelerated recovery (Anubis fast path; only populated when
	// the image was written with ShadowTracking enabled).
	ShadowCtrSuspects int64
	ShadowMACSuspects int64
	// FastRecoverySeconds models PUB merge + reconstruction of only the
	// suspect tree paths; FullRebuildSeconds models rebuilding the tree
	// over every written counter block.
	FastRecoverySeconds float64
	FullRebuildSeconds  float64
}

// String renders the report for logs.
func (r *Report) String() string {
	s := fmt.Sprintf("recovery: %d PUB blocks, %d entries (%d ctr + %d mac merged, %d stale), root ok=%v, est %.2fs",
		r.PUBBlocks, r.PUBEntries, r.MergedCtr, r.MergedMAC, r.SkippedStale,
		r.RootVerified, r.EstimatedSeconds)
	if r.ShadowCtrSuspects+r.ShadowMACSuspects > 0 {
		s += fmt.Sprintf("; shadow fast path: %d+%d suspects, %.3fs vs %.3fs full rebuild",
			r.ShadowCtrSuspects, r.ShadowMACSuspects,
			r.FastRecoverySeconds, r.FullRebuildSeconds)
	}
	if r.Workers > 0 {
		s += fmt.Sprintf("\n  parallel: %d workers; phases scan=%dcyc merge=%dcyc rebuild=%dcyc verify=%dcyc",
			r.Workers, r.ScanCycles, r.MergeCycles, r.RebuildCycles, r.VerifyCycles)
		for _, sh := range r.Shards {
			s += fmt.Sprintf("\n  shard %d: %d entries (%d ctr + %d mac merged, %d stale), %dcyc",
				sh.Shard, sh.Entries, sh.MergedCtr, sh.MergedMAC, sh.SkippedStale, sh.MergeCycles)
		}
	}
	return s
}

// ShardReport is one merge shard's slice of a parallel recovery run.
type ShardReport struct {
	// Shard is the shard index in [0, Workers).
	Shard int
	// Entries is how many PUB entries hashed to this shard.
	Entries int64
	// MergedCtr / MergedMAC / SkippedStale split Entries by outcome,
	// with the same meaning as the whole-run counters.
	MergedCtr    int64
	MergedMAC    int64
	SkippedStale int64
	// MergeCycles is the shard's modeled merge cost; WallNS the measured
	// host wall time its worker spent merging.
	MergeCycles int64
	WallNS      int64
}

// CountsEqual reports whether two runs recovered the same state: every
// semantic counter and the verification outcome must match. Timing
// (modeled cycles, wall clock) and parallel-engine shape (Workers,
// Shards, per-phase breakdowns) are ignored, so a serial and a parallel
// run over the same image compare equal exactly when they did the same
// work.
func (r *Report) CountsEqual(o *Report) bool {
	return r.PUBBlocks == o.PUBBlocks &&
		r.PUBEntries == o.PUBEntries &&
		r.MergedCtr == o.MergedCtr &&
		r.MergedMAC == o.MergedMAC &&
		r.SkippedStale == o.SkippedStale &&
		r.RootVerified == o.RootVerified &&
		r.ShadowCtrSuspects == o.ShadowCtrSuspects &&
		r.ShadowMACSuspects == o.ShadowMACSuspects
}

// Recover restores a crashed device image in place and verifies it. The
// configuration must match the one the image was created under (block
// size, seed/keys, PUB geometry).
func Recover(cfg config.Config, dev *nvm.Device) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sch, err := scheme.For(cfg)
	if err != nil {
		return nil, err
	}
	lay, err := layout.New(cfg)
	if err != nil {
		return nil, err
	}
	eng := crypt.NewEngine(cfg.Seed)
	rep := &Report{}

	savedRoot, err := core.LoadRoot(cfg.BlockSize, lay.CtlBase, dev.Peek)
	if err != nil {
		return nil, fmt.Errorf("%w: no persisted root: %v", ErrNoControlState, err)
	}

	if sch.UsesPUB() {
		ring := pub.NewRing(lay, dev)
		if err := ring.LoadCtl(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoControlState, err)
		}
		rep.PUBBlocks = ring.Len()
		// Per-entry cost along the Section IV-D model (EstimateCycles):
		// one block read per PUB block, then reads + MACs + writes per
		// entry. cyc stamps the emitted KindRecoveryMerge events so a
		// traced recovery renders as a timeline.
		read := cfg.ReadLatencyCycles()
		perEntry := 3*read + 2*int64(cfg.HashLatencyCycles) + 2*cfg.WriteLatencyCycles()
		cyc := int64(0)
		for _, blk := range ring.PeekAll() {
			cyc += read
			for _, e := range pub.UnpackBlock(cfg.BlockSize, blk) {
				rep.PUBEntries++
				cyc += perEntry
				mergeEntry(cfg, lay, eng, dev, e, rep, cyc)
			}
		}
	}

	// The scheme models its own recovery bill: PUB replay for the Thoth
	// schemes, a full tree rebuild for relaxed tree persistence, zero
	// for the strict baseline and co-location.
	rep.EstimatedCycles = sch.RecoveryCycles(cfg, rep.PUBBlocks, writtenCtrBlocks(lay, dev))
	rep.EstimatedSeconds = float64(rep.EstimatedCycles) / (cfg.CPUFreqGHz * 1e9)

	if cfg.ShadowTracking {
		estimateShadow(cfg, lay, dev, rep)
	}

	rep.RootVerified = bmt.Verify(lay, eng, dev, savedRoot)
	if !rep.RootVerified {
		return rep, ErrRootMismatch
	}
	return rep, nil
}

// writtenCtrBlocks counts the written blocks of the counter region —
// the size of the tree-rebuild bill a relaxed scheme pays at recovery.
func writtenCtrBlocks(lay *layout.Layout, dev *nvm.Device) int64 {
	var n int64
	dev.ForEachWritten(lay.CtrBase, lay.CtrBytes, func(int64, []byte) { n++ })
	return n
}

// estimateShadow fills the Anubis-shadow-table recovery estimates
// (suspect counts, fast-path vs full-rebuild seconds); shared by the
// serial and parallel paths since it only reads the image.
func estimateShadow(cfg config.Config, lay *layout.Layout, dev *nvm.Device, rep *Report) {
	ctrSus, macSus := core.ShadowSuspects(lay, dev.Peek)
	rep.ShadowCtrSuspects = int64(len(ctrSus))
	rep.ShadowMACSuspects = int64(len(macSus))
	var written int64
	dev.ForEachWritten(lay.CtrBase, lay.CtrBytes, func(int64, []byte) { written++ })
	read := cfg.ReadLatencyCycles()
	write := cfg.WriteLatencyCycles()
	hash := int64(cfg.HashLatencyCycles)
	levels := int64(lay.TreeLevels())
	perBlock := read + levels*hash + write
	shadowReads := (lay.ShadowBytes/int64(cfg.BlockSize) + 1) * read
	fast := rep.EstimatedCycles + shadowReads +
		(rep.ShadowCtrSuspects+rep.ShadowMACSuspects)*perBlock
	full := rep.EstimatedCycles + written*(read+levels*hash)
	rep.FastRecoverySeconds = float64(fast) / (cfg.CPUFreqGHz * 1e9)
	rep.FullRebuildSeconds = float64(full) / (cfg.CPUFreqGHz * 1e9)
}

// mergeEntry applies one partial update if it proves fresh against the
// in-place ciphertext. cyc is the modeled recovery cycle stamped on the
// emitted KindRecoveryMerge event. dev is a blockStore so the serial
// device and the parallel per-worker shard handles share this code:
// parallel determinism rests on every read and write here targeting
// blocks owned by the entry's shard group (the data ciphertext is
// read-only during merging, and the counter/MAC home blocks define the
// group).
func mergeEntry(cfg config.Config, lay *layout.Layout, eng *crypt.Engine, dev blockStore, e pub.Entry, rep *Report, cyc int64) {
	dataAddr := int64(e.BlockIndex) * int64(cfg.BlockSize)
	emit := func(detail string) {
		if cfg.Tracer == nil {
			return
		}
		cfg.Tracer.Emit(obs.Event{
			Kind:   obs.KindRecoveryMerge,
			Cycle:  cyc,
			Addr:   dataAddr,
			Scheme: cfg.Scheme.String(),
			Detail: detail,
		})
	}
	if dataAddr < lay.DataBase || dataAddr >= lay.DataBase+lay.DataBytes {
		// A corrupted entry; the root check will catch real damage, but
		// never dereference a bogus address.
		rep.SkippedStale++
		emit("out-of-range")
		return
	}
	ca := lay.CtrBlockAddr(dataAddr)
	cslot := lay.CtrSlot(dataAddr)
	ctrBlk := dev.Peek(ca)

	candidate := crypt.Counter{Major: ctr.Major(ctrBlk), Minor: e.Minor}
	ciphertext := dev.Peek(dataAddr)
	mac1 := eng.MAC(ciphertext, dataAddr, candidate, cfg.MACSize())
	if eng.MAC2(mac1) != e.MAC2 {
		rep.SkippedStale++
		emit("stale")
		return
	}

	// The entry matches the newest ciphertext: merge counter and MAC
	// into their home blocks.
	mergedCtr := false
	if ctr.Minor(ctrBlk, cslot) != e.Minor {
		ctr.SetMinor(ctrBlk, cslot, e.Minor)
		dev.WriteBlock(ca, ctrBlk)
		rep.MergedCtr++
		mergedCtr = true
	}
	ma := lay.MACBlockAddr(dataAddr)
	mslot := lay.MACSlot(dataAddr)
	macBlk := dev.Peek(ma)
	mergedMAC := false
	if !macs.Equal(macBlk, mslot, cfg.MACSize(), mac1) {
		macs.Set(macBlk, mslot, cfg.MACSize(), mac1)
		dev.WriteBlock(ma, macBlk)
		rep.MergedMAC++
		mergedMAC = true
	}
	switch {
	case mergedCtr && mergedMAC:
		emit("ctr+mac")
	case mergedCtr:
		emit("ctr")
	case mergedMAC:
		emit("mac")
	default:
		emit("noop")
	}
}

// EstimateCycles models the PUB-merge recovery cost (footnote 5 of the
// paper): for each PUB block, one block read; for each entry, reads of
// the counter block, ciphertext and MAC block, two MAC computations, and
// writes of the counter and MAC blocks. The formula lives with the
// Thoth scheme implementation (scheme.PUBReplayCycles).
func EstimateCycles(cfg config.Config, pubBlocks int64) int64 {
	return scheme.PUBReplayCycles(cfg, pubBlocks)
}

// EstimateSeconds converts EstimateCycles to wall-clock seconds.
func EstimateSeconds(cfg config.Config, pubBlocks int64) float64 {
	return float64(EstimateCycles(cfg, pubBlocks)) / (cfg.CPUFreqGHz * 1e9)
}

// EstimateCyclesParallel models sharded recovery: the PUB scan stays
// sequential (one block read per PUB block, in FIFO order), while the
// per-entry verify-then-merge work — which dominates, at two MAC
// computations plus three reads and two writes per entry — divides
// across the workers. Workers <= 1 reduces to EstimateCycles exactly.
func EstimateCyclesParallel(cfg config.Config, pubBlocks int64, workers int) int64 {
	if workers <= 1 {
		return EstimateCycles(cfg, pubBlocks)
	}
	read := cfg.ReadLatencyCycles()
	write := cfg.WriteLatencyCycles()
	hash := int64(cfg.HashLatencyCycles)
	perEntry := 3*read + 2*hash + 2*write
	entries := pubBlocks * int64(cfg.PartialsPerBlock())
	merge := (entries*perEntry + int64(workers) - 1) / int64(workers)
	return pubBlocks*read + merge
}

// EstimateSecondsParallel converts EstimateCyclesParallel to seconds.
func EstimateSecondsParallel(cfg config.Config, pubBlocks int64, workers int) float64 {
	return float64(EstimateCyclesParallel(cfg, pubBlocks, workers)) / (cfg.CPUFreqGHz * 1e9)
}
