// Package recovery implements the post-crash restoration procedure of
// Section IV-D. Given the NVM image left behind by a crash (the volatile
// caches are gone; the ADR domain — WPQ contents, PCB partials, PUB
// bounds, and the on-chip tree root — was flushed), it:
//
//  1. Restores the PUB ring bounds from the control region.
//  2. Scans the PUB oldest-to-youngest. For every packed partial update
//     it performs verify-then-merge: the candidate counter is assembled
//     from the in-place major and the entry's minor, the first-level MAC
//     is recomputed over the in-place ciphertext under that counter, and
//     the second-level MAC is compared against the entry's. A match
//     proves the entry corresponds to the ciphertext in NVM, so its
//     counter and (recomputed first-level) MAC are merged into their
//     home blocks; a mismatch means the entry is stale — the metadata
//     block in place, or a younger entry, already carries newer state —
//     and it is skipped. (This is the paper's "fetch the corresponding
//     ciphertext, compute two levels of MAC, and use the second level of
//     MAC to verify".)
//  3. Rebuilds the Bonsai Merkle Tree bottom-up from the merged counter
//     region and verifies it against the persisted root. Any tampering
//     with the PUB, the counters, or replayed stale blocks surfaces here
//     (or earlier as an unmergeable-but-claimed-fresh entry).
//
// The package also provides the analytic recovery-time model behind the
// paper's "7 seconds for a 64MB PUB" claim.
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/bmt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/ctr"
	"repro/internal/layout"
	"repro/internal/macs"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pub"
)

// ErrRootMismatch is returned when the rebuilt tree root does not match
// the persisted root: the image is tampered or corrupt.
var ErrRootMismatch = errors.New("recovery: rebuilt tree root does not match persisted root")

// Report summarizes one recovery run.
type Report struct {
	// PUBBlocks and PUBEntries are the ring contents scanned.
	PUBBlocks  int64
	PUBEntries int64
	// MergedCtr / MergedMAC count in-place metadata updates applied.
	MergedCtr int64
	MergedMAC int64
	// SkippedStale counts entries whose second-level MAC did not match
	// the in-place ciphertext (superseded by younger state).
	SkippedStale int64
	// RootVerified is true when the rebuilt tree matched the persisted
	// root.
	RootVerified bool
	// EstimatedCycles / EstimatedSeconds are the modeled recovery time
	// for the scanned PUB (Section IV-D's cost model).
	EstimatedCycles  int64
	EstimatedSeconds float64

	// Shadow-accelerated recovery (Anubis fast path; only populated when
	// the image was written with ShadowTracking enabled).
	ShadowCtrSuspects int64
	ShadowMACSuspects int64
	// FastRecoverySeconds models PUB merge + reconstruction of only the
	// suspect tree paths; FullRebuildSeconds models rebuilding the tree
	// over every written counter block.
	FastRecoverySeconds float64
	FullRebuildSeconds  float64
}

// String renders the report for logs.
func (r *Report) String() string {
	s := fmt.Sprintf("recovery: %d PUB blocks, %d entries (%d ctr + %d mac merged, %d stale), root ok=%v, est %.2fs",
		r.PUBBlocks, r.PUBEntries, r.MergedCtr, r.MergedMAC, r.SkippedStale,
		r.RootVerified, r.EstimatedSeconds)
	if r.ShadowCtrSuspects+r.ShadowMACSuspects > 0 {
		s += fmt.Sprintf("; shadow fast path: %d+%d suspects, %.3fs vs %.3fs full rebuild",
			r.ShadowCtrSuspects, r.ShadowMACSuspects,
			r.FastRecoverySeconds, r.FullRebuildSeconds)
	}
	return s
}

// Recover restores a crashed device image in place and verifies it. The
// configuration must match the one the image was created under (block
// size, seed/keys, PUB geometry).
func Recover(cfg config.Config, dev *nvm.Device) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay, err := layout.New(cfg)
	if err != nil {
		return nil, err
	}
	eng := crypt.NewEngine(cfg.Seed)
	rep := &Report{}

	savedRoot, err := core.LoadRoot(cfg.BlockSize, lay.CtlBase, dev.Peek)
	if err != nil {
		return nil, fmt.Errorf("recovery: no persisted root: %w", err)
	}

	if cfg.Scheme.IsThoth() {
		ring := pub.NewRing(lay, dev)
		if err := ring.LoadCtl(); err != nil {
			return nil, fmt.Errorf("recovery: %w", err)
		}
		rep.PUBBlocks = ring.Len()
		// Per-entry cost along the Section IV-D model (EstimateCycles):
		// one block read per PUB block, then reads + MACs + writes per
		// entry. cyc stamps the emitted KindRecoveryMerge events so a
		// traced recovery renders as a timeline.
		read := cfg.ReadLatencyCycles()
		perEntry := 3*read + 2*int64(cfg.HashLatencyCycles) + 2*cfg.WriteLatencyCycles()
		cyc := int64(0)
		for _, blk := range ring.PeekAll() {
			cyc += read
			for _, e := range pub.UnpackBlock(cfg.BlockSize, blk) {
				rep.PUBEntries++
				cyc += perEntry
				mergeEntry(cfg, lay, eng, dev, e, rep, cyc)
			}
		}
		rep.EstimatedCycles = EstimateCycles(cfg, rep.PUBBlocks)
		rep.EstimatedSeconds = float64(rep.EstimatedCycles) / (cfg.CPUFreqGHz * 1e9)
	}

	if cfg.ShadowTracking {
		ctrSus, macSus := core.ShadowSuspects(lay, dev.Peek)
		rep.ShadowCtrSuspects = int64(len(ctrSus))
		rep.ShadowMACSuspects = int64(len(macSus))
		var written int64
		dev.ForEachWritten(lay.CtrBase, lay.CtrBytes, func(int64, []byte) { written++ })
		read := cfg.ReadLatencyCycles()
		write := cfg.WriteLatencyCycles()
		hash := int64(cfg.HashLatencyCycles)
		levels := int64(lay.TreeLevels())
		perBlock := read + levels*hash + write
		shadowReads := (lay.ShadowBytes/int64(cfg.BlockSize) + 1) * read
		fast := rep.EstimatedCycles + shadowReads +
			(rep.ShadowCtrSuspects+rep.ShadowMACSuspects)*perBlock
		full := rep.EstimatedCycles + written*(read+levels*hash)
		rep.FastRecoverySeconds = float64(fast) / (cfg.CPUFreqGHz * 1e9)
		rep.FullRebuildSeconds = float64(full) / (cfg.CPUFreqGHz * 1e9)
	}

	rep.RootVerified = bmt.Verify(lay, eng, dev, savedRoot)
	if !rep.RootVerified {
		return rep, ErrRootMismatch
	}
	return rep, nil
}

// mergeEntry applies one partial update if it proves fresh against the
// in-place ciphertext. cyc is the modeled recovery cycle stamped on the
// emitted KindRecoveryMerge event.
func mergeEntry(cfg config.Config, lay *layout.Layout, eng *crypt.Engine, dev *nvm.Device, e pub.Entry, rep *Report, cyc int64) {
	dataAddr := int64(e.BlockIndex) * int64(cfg.BlockSize)
	emit := func(detail string) {
		if cfg.Tracer == nil {
			return
		}
		cfg.Tracer.Emit(obs.Event{
			Kind:   obs.KindRecoveryMerge,
			Cycle:  cyc,
			Addr:   dataAddr,
			Scheme: cfg.Scheme.String(),
			Detail: detail,
		})
	}
	if dataAddr < lay.DataBase || dataAddr >= lay.DataBase+lay.DataBytes {
		// A corrupted entry; the root check will catch real damage, but
		// never dereference a bogus address.
		rep.SkippedStale++
		emit("out-of-range")
		return
	}
	ca := lay.CtrBlockAddr(dataAddr)
	cslot := lay.CtrSlot(dataAddr)
	ctrBlk := dev.Peek(ca)

	candidate := crypt.Counter{Major: ctr.Major(ctrBlk), Minor: e.Minor}
	ciphertext := dev.Peek(dataAddr)
	mac1 := eng.MAC(ciphertext, dataAddr, candidate, cfg.MACSize())
	if eng.MAC2(mac1) != e.MAC2 {
		rep.SkippedStale++
		emit("stale")
		return
	}

	// The entry matches the newest ciphertext: merge counter and MAC
	// into their home blocks.
	mergedCtr := false
	if ctr.Minor(ctrBlk, cslot) != e.Minor {
		ctr.SetMinor(ctrBlk, cslot, e.Minor)
		dev.WriteBlock(ca, ctrBlk)
		rep.MergedCtr++
		mergedCtr = true
	}
	ma := lay.MACBlockAddr(dataAddr)
	mslot := lay.MACSlot(dataAddr)
	macBlk := dev.Peek(ma)
	mergedMAC := false
	if !macs.Equal(macBlk, mslot, cfg.MACSize(), mac1) {
		macs.Set(macBlk, mslot, cfg.MACSize(), mac1)
		dev.WriteBlock(ma, macBlk)
		rep.MergedMAC++
		mergedMAC = true
	}
	switch {
	case mergedCtr && mergedMAC:
		emit("ctr+mac")
	case mergedCtr:
		emit("ctr")
	case mergedMAC:
		emit("mac")
	default:
		emit("noop")
	}
}

// EstimateCycles models the PUB-merge recovery cost (footnote 5 of the
// paper): for each PUB block, one block read; for each entry, reads of
// the counter block, ciphertext and MAC block, two MAC computations, and
// writes of the counter and MAC blocks.
func EstimateCycles(cfg config.Config, pubBlocks int64) int64 {
	read := cfg.ReadLatencyCycles()
	write := cfg.WriteLatencyCycles()
	hash := int64(cfg.HashLatencyCycles)
	perEntry := 3*read + 2*hash + 2*write
	perBlock := read + int64(cfg.PartialsPerBlock())*perEntry
	return pubBlocks * perBlock
}

// EstimateSeconds converts EstimateCycles to wall-clock seconds.
func EstimateSeconds(cfg config.Config, pubBlocks int64) float64 {
	return float64(EstimateCycles(cfg, pubBlocks)) / (cfg.CPUFreqGHz * 1e9)
}
