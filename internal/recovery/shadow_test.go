package recovery

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/stats"
)

func shadowConfig() config.Config {
	cfg := testConfig(config.ThothWTSC)
	cfg.ShadowTracking = true
	return cfg
}

func TestShadowTrackedCrashRecovers(t *testing.T) {
	cfg := shadowConfig()
	c, model := runAndCrash(t, cfg, 500, 4096)
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatalf("recovery: %v (%s)", err, rep)
	}
	if rep.ShadowCtrSuspects == 0 {
		t.Fatal("shadow table must flag lost counter blocks")
	}
	if rep.FastRecoverySeconds <= 0 || rep.FullRebuildSeconds <= 0 {
		t.Fatal("shadow report must model both recovery paths")
	}
	verifyReadable(t, cfg, c, model)
}

func TestShadowSuspectsCoverDirtyLines(t *testing.T) {
	// Soundness: every counter block that was dirty in the cache at
	// crash time must be flagged in the shadow table (false positives
	// are fine; false negatives would break fast recovery).
	cfg := shadowConfig()
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now int64
	dirty := map[int64]bool{}
	for i := 0; i < 400; i++ {
		addr := int64(i%37) * 4096
		data := make([]byte, cfg.BlockSize)
		data[0] = byte(i)
		now = c.PersistBlock(now, addr, data)
	}
	// Snapshot dirty counter blocks before the crash wipes the caches.
	lay := c.Layout()
	c.ForEachDirtyCtr(func(addr int64) { dirty[addr] = true })
	if err := c.Crash(now); err != nil {
		t.Fatal(err)
	}

	ctrSus, _ := core.ShadowSuspects(lay, c.Device().Peek)
	flagged := map[int64]bool{}
	for _, a := range ctrSus {
		flagged[a] = true
	}
	for addr := range dirty {
		if !flagged[addr] {
			t.Fatalf("dirty counter block %#x not flagged by shadow table", addr)
		}
	}
}

func TestShadowWritesAreCountedAndCheap(t *testing.T) {
	// The shadow stream must exist but coalesce well in the WPQ (the
	// paper's "other categories ... their numbers are low").
	run := func(shadow bool) *stats.Stats {
		cfg := testConfig(config.ThothWTSC)
		cfg.ShadowTracking = shadow
		c, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var now int64
		for i := 0; i < 500; i++ {
			data := make([]byte, cfg.BlockSize)
			data[0] = byte(i)
			now = c.PersistBlock(now, int64(i%17)*4096, data)
		}
		return c.Stats()
	}
	with := run(true)
	without := run(false)
	if with.Writes(stats.WriteShadow) == 0 {
		t.Fatal("shadow tracking must produce shadow writes")
	}
	if without.Writes(stats.WriteShadow) != 0 {
		t.Fatal("shadow writes without tracking enabled")
	}
	// Coalescing keeps the overhead modest: far fewer shadow block
	// writes than metadata updates (2 per persist = 1000 updates).
	if with.Writes(stats.WriteShadow) > 500 {
		t.Fatalf("shadow writes = %d, want heavy coalescing", with.Writes(stats.WriteShadow))
	}
}

func TestFastRecoveryBeatsFullRebuild(t *testing.T) {
	// The shadow wins when the persisted working set is much larger than
	// the metadata caches: the full rebuild scans thousands of counter
	// blocks, the fast path only the few dozen that were cached dirty.
	cfg := shadowConfig()
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now int64
	for i := 0; i < 3000; i++ {
		data := make([]byte, cfg.BlockSize)
		data[0] = byte(i)
		now = c.PersistBlock(now, int64(i)*4096, data) // 3000 distinct pages
	}
	if err := c.Crash(now); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(cfg, c.Device())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FastRecoverySeconds >= rep.FullRebuildSeconds {
		t.Fatalf("fast path %.4fs must beat full rebuild %.4fs (suspects=%d)",
			rep.FastRecoverySeconds, rep.FullRebuildSeconds,
			rep.ShadowCtrSuspects+rep.ShadowMACSuspects)
	}
}

func TestShadowRegionPlacement(t *testing.T) {
	lay, err := layout.New(shadowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lay.ShadowSlots <= 0 || lay.ShadowBytes <= 0 {
		t.Fatal("shadow region must be allocated")
	}
	if lay.RegionOf(lay.ShadowBase) != layout.RegionShadow {
		t.Fatal("shadow base must classify as shadow region")
	}
	// Slots must stay inside the region.
	blk, off := lay.ShadowSlotAddr(lay.ShadowSlots - 1)
	if blk+int64(off) >= lay.ShadowBase+lay.ShadowBytes {
		t.Fatal("last shadow slot escapes the region")
	}
}
