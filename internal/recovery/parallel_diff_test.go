// The differential sweep lives in an external test package because the
// crashfuzz harness imports the public repro facade, which itself wraps
// internal/recovery — an in-package test would close an import cycle.
package recovery_test

import (
	"runtime"
	"testing"

	"repro/internal/crashfuzz"
)

// TestParallelRecoveryDifferential is the acceptance sweep for the
// parallel recovery engine: 200 seeded crash images (the DeriveCase
// distribution mixes uniform and adversarial crash points, both block
// sizes, and WTSC/WTBC scheme pairs), each recovered with the serial
// engine and with RecoverParallel at Workers in {1, 2, 4, 8}. Every
// recovery must produce byte-identical device images, equal report
// counters, and the same error sentinel. Wired into `make ci` via the
// parallel-diff target (and the ordinary test/race lanes).
func TestParallelRecoveryDifferential(t *testing.T) {
	const seeds = 200
	sw := crashfuzz.SweepWith(1, seeds, runtime.GOMAXPROCS(0), func(seed int64) *crashfuzz.Result {
		return crashfuzz.RunParallel(seed, nil)
	})
	if sw.Cases != seeds {
		t.Fatalf("sweep ran %d cases, want %d", sw.Cases, seeds)
	}
	if sw.Failed() {
		t.Fatalf("\n%s", sw)
	}
}
