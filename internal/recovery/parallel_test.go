package recovery

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pub"
)

// imageBytes serializes the device so runs can be compared byte-exactly.
func imageBytes(t *testing.T, dev *nvm.Device) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertParity recovers clones of img with the serial engine and with
// RecoverParallel at every given worker count, requiring identical error
// sentinels, byte-identical post-recovery images, identical write
// accounting, and equal report counters.
func assertParity(t *testing.T, cfg config.Config, img *nvm.Device, workerCounts ...int) {
	t.Helper()
	sdev := img.Clone()
	srep, serr := Recover(cfg, sdev)
	sbytes := imageBytes(t, sdev)
	for _, w := range workerCounts {
		pdev := img.Clone()
		prep, perr := RecoverParallel(cfg, pdev, RecoverOpts{Workers: w})
		if (serr == nil) != (perr == nil) {
			t.Fatalf("workers=%d: serial err=%v, parallel err=%v", w, serr, perr)
		}
		for _, sentinel := range []error{ErrRootMismatch, ErrNoControlState} {
			if errors.Is(serr, sentinel) != errors.Is(perr, sentinel) {
				t.Fatalf("workers=%d: sentinel %v diverges: serial=%v parallel=%v",
					w, sentinel, serr, perr)
			}
		}
		if !bytes.Equal(sbytes, imageBytes(t, pdev)) {
			t.Fatalf("workers=%d: post-recovery image diverges from serial", w)
		}
		if pdev.TotalWrites() != sdev.TotalWrites() {
			t.Fatalf("workers=%d: TotalWrites=%d, serial=%d", w, pdev.TotalWrites(), sdev.TotalWrites())
		}
		if (srep == nil) != (prep == nil) {
			t.Fatalf("workers=%d: report nil-ness diverges", w)
		}
		if srep != nil && !srep.CountsEqual(prep) {
			t.Fatalf("workers=%d: reports diverge\nserial:   %v\nparallel: %v", w, srep, prep)
		}
	}
}

func TestRecoverParallelMatchesSerial(t *testing.T) {
	for _, s := range []config.Scheme{config.ThothWTSC, config.ThothWTBC, config.BaselineStrict} {
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			c, _ := runAndCrash(t, cfg, 500, 4096)
			assertParity(t, cfg, c.Device(), 1, 2, 4, 8)
		})
	}
}

func TestRecoverParallelShadowParity(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	cfg.ShadowTracking = true
	c, _ := runAndCrash(t, cfg, 200, 4096)
	assertParity(t, cfg, c.Device(), 1, 4)
}

// TestRecoverParallelDefaultWorkers exercises the Workers<=0 default and
// checks the per-shard breakdown is internally consistent: shard entry
// counts partition the scan total, and merges sum to the report totals.
func TestRecoverParallelDefaultWorkers(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	c, model := runAndCrash(t, cfg, 120, 4096)
	rep, err := RecoverParallel(cfg, c.Device(), RecoverOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers < 1 || rep.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d, want GOMAXPROCS default %d", rep.Workers, runtime.GOMAXPROCS(0))
	}
	if len(rep.Shards) != rep.Workers {
		t.Fatalf("len(Shards) = %d, want %d", len(rep.Shards), rep.Workers)
	}
	var entries, ctr, mac, stale int64
	for _, sh := range rep.Shards {
		entries += sh.Entries
		ctr += sh.MergedCtr
		mac += sh.MergedMAC
		stale += sh.SkippedStale
	}
	if entries != rep.PUBEntries || ctr != rep.MergedCtr || mac != rep.MergedMAC || stale != rep.SkippedStale {
		t.Fatalf("shard totals (%d,%d,%d,%d) do not partition report (%d,%d,%d,%d)",
			entries, ctr, mac, stale, rep.PUBEntries, rep.MergedCtr, rep.MergedMAC, rep.SkippedStale)
	}
	verifyReadable(t, cfg, c, model)
}

// TestParallelErrorPathParity covers the corrupt-PUB error paths of the
// issue: bad entry MACs, out-of-range addresses, and a torn final block
// must fail (or succeed) identically — same errors.Is sentinel, same
// image, same counters — from both recovery engines.
func TestParallelErrorPathParity(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)

	t.Run("bad-entry-mac", func(t *testing.T) {
		c, _ := runAndCrash(t, cfg, 500, 4096)
		dev, lay := c.Device(), c.Layout()
		// Flip every bit of every written PUB block: no entry verifies,
		// nothing merges, and the rebuilt root cannot match.
		for i := int64(0); i < lay.PUBBlocks(); i++ {
			addr := lay.PUBBlockAddr(i)
			if !dev.Written(addr) {
				continue
			}
			blk := dev.Peek(addr)
			for j := range blk {
				blk[j] ^= 0xFF
			}
			dev.WriteBlock(addr, blk)
		}
		if _, err := Recover(cfg, dev.Clone()); !errors.Is(err, ErrRootMismatch) {
			t.Fatalf("serial err = %v, want ErrRootMismatch", err)
		}
		assertParity(t, cfg, dev, 1, 2, 4, 8)
	})

	t.Run("out-of-range-entry", func(t *testing.T) {
		c, _ := runAndCrash(t, cfg, 300, 4096)
		dev, lay := c.Device(), c.Layout()
		// Overwrite one live PUB block with entries pointing far past the
		// data region: both engines must skip them without dereferencing.
		bogus := make([]pub.Entry, pub.EntriesPerBlock(cfg.BlockSize))
		for i := range bogus {
			bogus[i] = pub.Entry{BlockIndex: ^uint32(0) - uint32(i), MAC2: 0xDEAD, Minor: 1}
		}
		for i := int64(0); i < lay.PUBBlocks(); i++ {
			addr := lay.PUBBlockAddr(i)
			if dev.Written(addr) {
				dev.WriteBlock(addr, pub.PackBlock(cfg.BlockSize, bogus))
				break
			}
		}
		assertParity(t, cfg, dev, 1, 2, 4, 8)
	})

	t.Run("torn-final-block", func(t *testing.T) {
		c, _ := runAndCrash(t, cfg, 500, 4096)
		dev, lay := c.Device(), c.Layout()
		// Zero the back half of the last written PUB block, as if power
		// died mid-write of the youngest packed block.
		for i := lay.PUBBlocks() - 1; i >= 0; i-- {
			addr := lay.PUBBlockAddr(i)
			if !dev.Written(addr) {
				continue
			}
			blk := dev.Peek(addr)
			for j := len(blk) / 2; j < len(blk); j++ {
				blk[j] = 0
			}
			dev.WriteBlock(addr, blk)
			break
		}
		assertParity(t, cfg, dev, 1, 2, 4, 8)
	})

	t.Run("no-control-state", func(t *testing.T) {
		// A controller that never crashed never wrote the control region:
		// both paths must return ErrNoControlState.
		c, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dev := c.Device()
		if _, err := Recover(cfg, dev.Clone()); !errors.Is(err, ErrNoControlState) {
			t.Fatalf("serial err = %v, want ErrNoControlState", err)
		}
		if _, err := RecoverParallel(cfg, dev.Clone(), RecoverOpts{Workers: 4}); !errors.Is(err, ErrNoControlState) {
			t.Fatalf("parallel err = %v, want ErrNoControlState", err)
		}
		assertParity(t, cfg, dev, 1, 4)
	})
}

// TestRecoverParallelStress hammers the striped-locking path: a small
// image recovered over and over at Workers=8, so the race detector sees
// many goroutine interleavings over the same stripes.
func TestRecoverParallelStress(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	cfg.PUBBytes = 32 * int64(cfg.BlockSize)
	c, _ := runAndCrash(t, cfg, 300, 4096)
	img := c.Device()
	want := ""
	for i := 0; i < 25; i++ {
		dev := img.Clone()
		rep, err := RecoverParallel(cfg, dev, RecoverOpts{Workers: 8})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		got := string(imageBytes(t, dev))
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("iteration %d: image differs from iteration 0", i)
		}
		if !rep.RootVerified {
			t.Fatalf("iteration %d: root not verified", i)
		}
	}
}

// TestEstimateCyclesParallel pins the modeled speedup: the acceptance
// target (4 workers at least 2x faster than serial on a full PUB) holds
// in the cycle model regardless of how many CPUs this host has.
func TestEstimateCyclesParallel(t *testing.T) {
	cfg := config.Default()
	n := cfg.PUBBlocks()
	if got, want := EstimateCyclesParallel(cfg, n, 1), EstimateCycles(cfg, n); got != want {
		t.Fatalf("workers=1 estimate %d != serial %d", got, want)
	}
	serial := EstimateCycles(cfg, n)
	par4 := EstimateCyclesParallel(cfg, n, 4)
	if par4*2 > serial {
		t.Fatalf("modeled speedup at 4 workers is %.2fx, want >= 2x (serial=%d, parallel=%d)",
			float64(serial)/float64(par4), serial, par4)
	}
	if s4, s8 := EstimateSecondsParallel(cfg, n, 4), EstimateSecondsParallel(cfg, n, 8); s8 >= s4 {
		t.Fatalf("seconds not decreasing in workers: w4=%.3f w8=%.3f", s4, s8)
	}
}

// TestRecoverParallelWallClockSpeedup measures real wall-clock gain. It
// needs hardware parallelism, so it skips on boxes (like single-CPU CI
// containers) that cannot express it; the cycle-model assertion above
// runs everywhere.
func TestRecoverParallelWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >= 4 CPUs, have GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
	cfg := testConfig(config.ThothWTSC)
	cfg.PUBBytes = 64 << 10
	cfg.PUBEvictFraction = 1.0
	c, _ := runAndCrash(t, cfg, 5000, 4096)
	img := c.Device()

	timeIt := func(f func(dev *nvm.Device)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			dev := img.Clone()
			t0 := time.Now()
			f(dev)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := timeIt(func(dev *nvm.Device) { Recover(cfg, dev) })
	par := timeIt(func(dev *nvm.Device) { RecoverParallel(cfg, dev, RecoverOpts{Workers: 4}) })
	if par > serial {
		t.Fatalf("parallel recovery slower than serial: %v vs %v", par, serial)
	}
	t.Logf("serial=%v parallel(w4)=%v speedup=%.2fx", serial, par, float64(serial)/float64(par))
}

// TestRecoverParallelPhaseEvents checks that a traced parallel recovery
// emits balanced begin/end spans for every phase, per-shard merge spans,
// and that the whole stream renders to a valid Chrome trace.
func TestRecoverParallelPhaseEvents(t *testing.T) {
	cfg := testConfig(config.ThothWTSC)
	const workers = 4
	var mu sync.Mutex
	var events []obs.Event
	cfg.Tracer = obs.Func(func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	c, _ := runAndCrash(t, cfg, 200, 4096)
	if _, err := RecoverParallel(cfg, c.Device(), RecoverOpts{Workers: workers}); err != nil {
		t.Fatal(err)
	}

	type span struct {
		phase string
		shard int64
	}
	begins := map[span]int{}
	ends := map[span]int{}
	for _, e := range events {
		if e.Kind != obs.KindRecoveryPhase {
			continue
		}
		sp := span{e.Part, e.Aux}
		switch e.Detail {
		case obs.PhaseBegin:
			begins[sp]++
		case obs.PhaseEnd:
			ends[sp]++
		default:
			t.Fatalf("unexpected phase detail %q", e.Detail)
		}
	}
	for _, phase := range []string{obs.PhaseScan, obs.PhaseMerge, obs.PhaseRebuild, obs.PhaseVerify} {
		sp := span{phase, 0}
		if begins[sp] != 1 || ends[sp] != 1 {
			t.Fatalf("phase %q: %d begins / %d ends, want 1/1", phase, begins[sp], ends[sp])
		}
	}
	for s := int64(1); s <= workers; s++ {
		sp := span{obs.PhaseMerge, s}
		if begins[sp] != 1 || ends[sp] != 1 {
			t.Fatalf("merge shard %d: %d begins / %d ends, want 1/1", s-1, begins[sp], ends[sp])
		}
	}

	// The recorded stream (controller events + recovery spans) must
	// round-trip through the Chrome exporter.
	var buf bytes.Buffer
	ch := obs.NewChrome(&buf, cfg.CPUFreqGHz)
	for _, e := range events {
		ch.Emit(e)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChrome(&buf); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
}
