// Parallel sharded recovery. The serial Recover is the reference
// implementation; RecoverParallel must produce a byte-identical device
// image and an equal Report (modulo timing) for every crash image and
// worker count — the differential suite in parallel_diff_test.go and the
// FuzzParallelRecovery target enforce exactly that.
//
// Why sharding by metadata *group* is sound: mergeEntry's writes
// read-modify-write whole counter blocks (shared by every data block of
// one page) and whole MAC blocks (shared by MACsPerBlock consecutive
// data blocks). Two entries may therefore only race if their data blocks
// share a counter or MAC home block, and both sharings are confined to a
// group of lcm(BlocksPerPage, MACsPerBlock) consecutive data blocks. The
// shard key hashes that group index, so same-group entries land in one
// shard and replay there in their original FIFO (oldest-to-youngest)
// order, while cross-shard entries touch disjoint blocks — making the
// final image independent of scheduling, hence byte-identical to the
// serial pass.
package recovery

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bmt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/layout"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pub"
	"repro/internal/scheme"
)

// RecoverOpts configures RecoverParallel.
type RecoverOpts struct {
	// Workers is the number of merge/rebuild goroutines. Values <= 0
	// default to runtime.GOMAXPROCS(0); the count is capped at
	// maxWorkers.
	Workers int
}

// maxWorkers bounds the shard count: beyond this, per-shard bookkeeping
// outweighs any conceivable merge parallelism.
const maxWorkers = 256

// shardTask is one PUB entry queued for a shard, with the modeled cycle
// it was accounted at during the FIFO scan (so traced parallel runs
// stamp the same per-entry cycles as serial ones).
type shardTask struct {
	e   pub.Entry
	cyc int64
}

// GroupBlocks returns the metadata-group span in data blocks — the unit
// that must never be split across shards, here or in the steady-state
// pool engine (internal/engine), which partitions the address space by
// whole groups for exactly the reason documented at the top of this
// file.
func GroupBlocks(cfg config.Config) int64 { return shardGroupBlocks(cfg) }

// shardGroupBlocks returns the number of consecutive data blocks that
// must stay in one shard: the least common multiple of the counter-block
// span (one counter block per page) and the MAC-block span.
func shardGroupBlocks(cfg config.Config) int64 {
	a := int64(cfg.BlocksPerPage())
	b := int64(cfg.MACsPerBlock())
	g := a
	for r := b; r != 0; {
		g, r = r, g%r
	}
	return a / g * b
}

// shardOf maps a group index onto a shard with a splitmix-style bit
// mixer, spreading hot neighbouring groups across workers while staying
// a pure function of the group (stable across runs and worker schedules).
func shardOf(group int64, workers int) int {
	h := uint64(group)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(workers))
}

// emitPhase emits the begin/end pair of one recovery phase span. shard
// is 0 for the whole-phase span, s+1 for shard s's slice of it.
func emitPhase(cfg config.Config, phase string, shard int64, begin, end int64) {
	if cfg.Tracer == nil {
		return
	}
	cfg.Tracer.Emit(obs.Event{
		Kind: obs.KindRecoveryPhase, Cycle: begin, Aux: shard,
		Scheme: cfg.Scheme.String(), Part: phase, Detail: obs.PhaseBegin,
	})
	cfg.Tracer.Emit(obs.Event{
		Kind: obs.KindRecoveryPhase, Cycle: end, Aux: shard,
		Scheme: cfg.Scheme.String(), Part: phase, Detail: obs.PhaseEnd,
	})
}

// lockedTracer serializes Emit calls issued by concurrent shard
// goroutines, so callers can pass ordinary (non-concurrency-safe)
// tracers — the Chrome exporter, ring buffers — to RecoverParallel.
type lockedTracer struct {
	mu sync.Mutex
	t  obs.Tracer
}

// Emit forwards one event under the lock.
func (l *lockedTracer) Emit(e obs.Event) {
	l.mu.Lock()
	l.t.Emit(e)
	l.mu.Unlock()
}

// RecoverParallel restores a crashed device image in place like Recover,
// but shards the PUB merge and the tree rebuild across worker
// goroutines. The result — device bytes, error (same sentinels, test
// with errors.Is), and Report counters (CountsEqual) — is identical to
// the serial pass for any worker count; only the timing fields and the
// per-shard breakdown differ.
func RecoverParallel(cfg config.Config, dev *nvm.Device, opts RecoverOpts) (*Report, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sch, err := scheme.For(cfg)
	if err != nil {
		return nil, err
	}
	lay, err := layout.New(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Workers: workers}

	savedRoot, err := core.LoadRoot(cfg.BlockSize, lay.CtlBase, dev.Peek)
	if err != nil {
		return nil, fmt.Errorf("%w: no persisted root: %v", ErrNoControlState, err)
	}

	read := cfg.ReadLatencyCycles()
	hash := int64(cfg.HashLatencyCycles)

	if sch.UsesPUB() {
		// Phase 1 — scan: walk the ring oldest-to-youngest exactly like
		// the serial pass, stamping each entry with its serial-model
		// cycle, and queue it on the shard owning its metadata group.
		scanStart := time.Now()
		ring := pub.NewRing(lay, dev)
		if err := ring.LoadCtl(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoControlState, err)
		}
		rep.PUBBlocks = ring.Len()
		perEntry := 3*read + 2*hash + 2*cfg.WriteLatencyCycles()
		group := shardGroupBlocks(cfg)
		shards := make([][]shardTask, workers)
		cyc := int64(0)
		for _, blk := range ring.PeekAll() {
			cyc += read
			for _, e := range pub.UnpackBlock(cfg.BlockSize, blk) {
				rep.PUBEntries++
				cyc += perEntry
				s := shardOf(int64(e.BlockIndex)/group, workers)
				shards[s] = append(shards[s], shardTask{e, cyc})
			}
		}
		rep.ScanCycles = rep.PUBBlocks * read
		rep.ScanWallNS = time.Since(scanStart).Nanoseconds()
		emitPhase(cfg, obs.PhaseScan, 0, 0, rep.ScanCycles)

		// Phase 2 — merge: one goroutine per shard, each with its own
		// crypto engine (engines carry scratch and are not
		// concurrency-safe) and a locked shard view of the device.
		mergeStart := time.Now()
		mcfg := cfg
		if cfg.Tracer != nil {
			mcfg.Tracer = &lockedTracer{t: cfg.Tracer}
		}
		shardReps := make([]Report, workers)
		shardWall := make([]int64, workers)
		var wg sync.WaitGroup
		for s := 0; s < workers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				t0 := time.Now()
				eng := crypt.NewEngine(cfg.Seed)
				store := dev.Shard()
				for _, tk := range shards[s] {
					mergeEntry(mcfg, lay, eng, store, tk.e, &shardReps[s], tk.cyc)
				}
				shardWall[s] = time.Since(t0).Nanoseconds()
			}(s)
		}
		wg.Wait()
		rep.MergeWallNS = time.Since(mergeStart).Nanoseconds()

		rep.Shards = make([]ShardReport, workers)
		for s := range rep.Shards {
			sr := &rep.Shards[s]
			sr.Shard = s
			sr.Entries = int64(len(shards[s]))
			sr.MergedCtr = shardReps[s].MergedCtr
			sr.MergedMAC = shardReps[s].MergedMAC
			sr.SkippedStale = shardReps[s].SkippedStale
			sr.MergeCycles = sr.Entries * perEntry
			sr.WallNS = shardWall[s]
			rep.MergedCtr += sr.MergedCtr
			rep.MergedMAC += sr.MergedMAC
			rep.SkippedStale += sr.SkippedStale
			if sr.MergeCycles > rep.MergeCycles {
				rep.MergeCycles = sr.MergeCycles // critical path: slowest shard
			}
			emitPhase(cfg, obs.PhaseMerge, int64(s)+1,
				rep.ScanCycles, rep.ScanCycles+sr.MergeCycles)
		}
		emitPhase(cfg, obs.PhaseMerge, 0, rep.ScanCycles, rep.ScanCycles+rep.MergeCycles)

		rep.EstimatedCycles = EstimateCyclesParallel(cfg, rep.PUBBlocks, workers)
		rep.EstimatedSeconds = float64(rep.EstimatedCycles) / (cfg.CPUFreqGHz * 1e9)
	} else {
		// Non-PUB schemes: the scheme's own recovery model (zero for the
		// strict schemes, the tree-rebuild bill for relaxed persistence).
		rep.EstimatedCycles = sch.RecoveryCycles(cfg, 0, writtenCtrBlocks(lay, dev))
		rep.EstimatedSeconds = float64(rep.EstimatedCycles) / (cfg.CPUFreqGHz * 1e9)
	}

	if cfg.ShadowTracking {
		estimateShadow(cfg, lay, dev, rep)
	}

	// Phase 3 — rebuild: hash the written counter blocks and each tree
	// level in parallel; the level barriers end in the sequential root
	// join. Merging has fully joined, so the device is read-only here.
	rebuildStart := time.Now()
	newEng := func() *crypt.Engine { return crypt.NewEngine(cfg.Seed) }
	root, leaves := bmt.RebuildParallel(lay, newEng, dev, workers)
	rep.RebuildWallNS = time.Since(rebuildStart).Nanoseconds()
	levels := int64(lay.TreeLevels())
	serialRebuild := leaves * (read + levels*hash)
	rep.RebuildCycles = (serialRebuild + int64(workers) - 1) / int64(workers)
	mergeEnd := rep.ScanCycles + rep.MergeCycles
	emitPhase(cfg, obs.PhaseRebuild, 0, mergeEnd, mergeEnd+rep.RebuildCycles)

	// Phase 4 — verify: the root join and comparison are sequential.
	verifyStart := time.Now()
	rep.RootVerified = root == savedRoot
	rep.VerifyWallNS = time.Since(verifyStart).Nanoseconds()
	rep.VerifyCycles = levels * hash
	rebuildEnd := mergeEnd + rep.RebuildCycles
	emitPhase(cfg, obs.PhaseVerify, 0, rebuildEnd, rebuildEnd+rep.VerifyCycles)
	if !rep.RootVerified {
		return rep, ErrRootMismatch
	}
	return rep, nil
}
